// Tests for the batched dominance kernels: tile-level property tests
// against the scalar reference, the batched counting rule, and end-to-end
// parity — every rewired consumer (skyline algorithms, SigGen-IF, Γ sets,
// streaming, the pooled backends, whole engine plans) must produce
// bit-identical outputs under kScalar, kTiled, and kSimd. The simd tests
// run on every host: without a vector ISA the kernel dispatches to the
// portable word-mask sweep, which must satisfy the same contracts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "core/dominance.h"
#include "core/gamma.h"
#include "datagen/generators.h"
#include "engine/engine.h"
#include "engine/query_context.h"
#include "engine/planner.h"
#include "kernels/dominance_kernel.h"
#include "kernels/tile_view.h"
#include "minhash/siggen.h"
#include "parallel/parallel_ops.h"
#include "parallel/thread_pool.h"
#include "rtree/rtree.h"
#include "stream/streaming.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

constexpr DomKernel kAllKernels[] = {DomKernel::kScalar, DomKernel::kTiled,
                                     DomKernel::kSimd};

// ---------------------------------------------------------------------------
// Tile-level property tests: batched masks == per-pair core dominance.

// Builds a tile of `rows` random points over a tiny value alphabet (heavy
// duplication → plenty of dominated / equal / incomparable pairs).
Tile RandomTile(Rng& rng, Dim dims, size_t rows) {
  Tile tile(dims);
  std::vector<Coord> point(dims);
  for (size_t r = 0; r < rows; ++r) {
    for (Dim d = 0; d < dims; ++d) point[d] = static_cast<Coord>(rng.NextInt(0, 3));
    tile.PushRow(static_cast<RowId>(r), point);
  }
  return tile;
}

void ExpectKernelAgreesWithCore(std::span<const Coord> p, const Tile& tile) {
  const TileView view = tile.view();

  uint64_t want_dominated = 0, want_dominators = 0, want_weak = 0;
  for (size_t r = 0; r < view.rows; ++r) {
    std::vector<Coord> row(view.dims);
    for (size_t d = 0; d < view.dims; ++d) row[d] = view.at(r, d);
    if (Dominates(p, row)) want_dominated |= uint64_t{1} << r;
    if (Dominates(row, p)) want_dominators |= uint64_t{1} << r;
    if (WeaklyDominates(p, row)) want_weak |= uint64_t{1} << r;
  }

  for (const DomKernel kind : kAllKernels) {
    const DominanceKernel kernel(kind);
    EXPECT_EQ(kernel.FilterDominated(p, view), want_dominated);
    EXPECT_EQ(kernel.FilterDominators(p, view), want_dominators);
    EXPECT_EQ(kernel.FilterWeaklyDominated(p, view), want_weak);
    EXPECT_EQ(kernel.AnyDominator(p, view), want_dominators != 0);
    const BlockClassification cls = kernel.ClassifyBlock(p, view);
    EXPECT_EQ(cls.dominated, want_dominated);
    EXPECT_EQ(cls.dominators, want_dominators);
  }
}

TEST(DominanceKernelTest, RandomTilesMatchScalarReference) {
  Rng rng(7);
  for (const Dim dims : {Dim{1}, Dim{2}, Dim{4}, Dim{7}}) {
    for (const size_t rows : {size_t{1}, size_t{5}, size_t{63}, size_t{64}}) {
      for (int iter = 0; iter < 20; ++iter) {
        const Tile tile = RandomTile(rng, dims, rows);
        std::vector<Coord> probe(dims);
        for (Dim d = 0; d < dims; ++d) probe[d] = static_cast<Coord>(rng.NextInt(0, 3));
        ExpectKernelAgreesWithCore(probe, tile);
      }
    }
  }
}

TEST(DominanceKernelTest, AllEqualRowsAreNeitherDominatedNorDominators) {
  const Dim dims = 3;
  Tile tile(dims);
  const std::vector<Coord> point{1.0, 2.0, 3.0};
  for (size_t r = 0; r < 10; ++r) tile.PushRow(static_cast<RowId>(r), point);

  for (const DomKernel kind : kAllKernels) {
    const DominanceKernel kernel(kind);
    const BlockClassification cls = kernel.ClassifyBlock(point, tile.view());
    EXPECT_EQ(cls.dominated, 0u);
    EXPECT_EQ(cls.dominators, 0u);
    // Equal rows ARE weakly dominated.
    EXPECT_EQ(kernel.FilterWeaklyDominated(point, tile.view()),
              tile.view().FullMask());
    EXPECT_FALSE(kernel.AnyDominator(point, tile.view()));
  }
}

TEST(DominanceKernelTest, RaggedAndSingleDimensionTiles) {
  Rng rng(11);
  // d = 1: dominance degenerates to strict less-than.
  for (int iter = 0; iter < 10; ++iter) {
    const Tile tile = RandomTile(rng, 1, 37);  // ragged: 37 < kTileRows
    for (Coord v : {0.0, 1.0, 2.0, 3.0}) {
      const std::vector<Coord> probe{v};
      ExpectKernelAgreesWithCore(probe, tile);
    }
  }
}

TEST(DominanceKernelTest, CountingRuleChargesTileRowsPerCall) {
  Rng rng(13);
  const Tile tile = RandomTile(rng, 4, 29);
  const std::vector<Coord> probe{1.0, 1.0, 1.0, 1.0};

  // Both batched flavours charge exactly tile.rows to BOTH counters per
  // call — early exits are never discounted, so the accounting is
  // flavour-independent by construction.
  for (const DomKernel kind : {DomKernel::kTiled, DomKernel::kSimd}) {
    const DominanceKernel batched(kind);
    const uint64_t total_before = DominanceCounter::Count();
    const uint64_t tiled_before = DominanceCounter::TiledCount();
    (void)batched.ClassifyBlock(probe, tile.view());
    EXPECT_EQ(DominanceCounter::Count() - total_before, tile.rows());
    EXPECT_EQ(DominanceCounter::TiledCount() - tiled_before, tile.rows());
  }

  // The scalar kernel never touches the tiled counter.
  const DominanceKernel scalar(DomKernel::kScalar);
  const uint64_t total_before = DominanceCounter::Count();
  const uint64_t tiled_before = DominanceCounter::TiledCount();
  (void)scalar.FilterDominated(probe, tile.view());
  EXPECT_EQ(DominanceCounter::Count() - total_before, tile.rows());
  EXPECT_EQ(DominanceCounter::TiledCount() - tiled_before, 0u);
}

// ---------------------------------------------------------------------------
// PruneCorners: tile-of-probes against tile-of-candidates (the BBS node
// prune). Reference is the per-pair core relation: a corner is pruned iff
// some skyline row strictly dominates it.

TEST(DominanceKernelTest, PruneCornersMatchesPerPairReference) {
  Rng rng(31);
  for (const Dim dims : {Dim{1}, Dim{2}, Dim{4}, Dim{7}}) {
    for (const size_t corner_rows : {size_t{1}, size_t{13}, size_t{64}}) {
      for (const size_t sky_rows : {size_t{1}, size_t{40}, size_t{64}}) {
        for (int iter = 0; iter < 10; ++iter) {
          const Tile corners = RandomTile(rng, dims, corner_rows);
          const Tile skyline = RandomTile(rng, dims, sky_rows);
          uint64_t want = 0;
          std::vector<Coord> corner(dims), row(dims);
          for (size_t c = 0; c < corner_rows; ++c) {
            for (Dim d = 0; d < dims; ++d) corner[d] = corners.view().at(c, d);
            for (size_t s = 0; s < sky_rows; ++s) {
              for (Dim d = 0; d < dims; ++d) row[d] = skyline.view().at(s, d);
              if (Dominates(row, corner)) {
                want |= uint64_t{1} << c;
                break;
              }
            }
          }
          for (const DomKernel kind : kAllKernels) {
            const DominanceKernel kernel(kind);
            ASSERT_EQ(kernel.PruneCorners(corners.view(), skyline.view()), want)
                << ToString(kind) << " dims=" << dims << " corners=" << corner_rows
                << " sky=" << sky_rows;
          }
        }
      }
    }
  }
}

TEST(DominanceKernelTest, PruneCornersBatchedCountingRule) {
  constexpr Dim kDims = 4;
  constexpr size_t kCorners = 23;
  constexpr size_t kSky = 59;

  // Corners trade dim 0 against dim 1, so their ceiling is (2.22, 3.00,
  // 2.5, 2.5). Three skylines probe the batched counting rule:
  //   high       — every row above the ceiling: the screen rejects all of
  //                them, no candidate is ever swept.
  //   trap       — every row under the ceiling but dominating nothing
  //                (needs r >= 21 on dim 0 and r <= 1 on dim 1 at once):
  //                all rows swept, nothing pruned.
  //   saturating — the origin first (dominates every corner in one
  //                sweep), trap rows after it that saturation skips.
  Tile corners(kDims);
  for (size_t r = 0; r < kCorners; ++r) {
    const Coord rc = static_cast<Coord>(r) * 0.01;
    const std::vector<Coord> row = {2.0 + rc, 3.0 - rc, 2.5, 2.5};
    corners.PushRow(static_cast<RowId>(r), row);
  }
  const std::vector<Coord> trap_row = {2.21, 2.99, 2.5, 2.5};
  const std::vector<Coord> origin(kDims, 0.0);
  Tile high(kDims);
  Tile trap(kDims);
  Tile saturating(kDims);
  for (size_t s = 0; s < kSky; ++s) {
    const std::vector<Coord> high_row(kDims, 5.0 + static_cast<Coord>(s) * 0.01);
    high.PushRow(static_cast<RowId>(s), high_row);
    trap.PushRow(static_cast<RowId>(s), trap_row);
    saturating.PushRow(static_cast<RowId>(s), s == 0 ? origin : trap_row);
  }

  // Batched flavours charge skyline.rows for the ceiling screen plus
  // corners.rows per candidate row swept, to BOTH counters.
  for (const DomKernel kind : {DomKernel::kTiled, DomKernel::kSimd}) {
    const DominanceKernel batched(kind);
    uint64_t total_before = DominanceCounter::Count();
    uint64_t tiled_before = DominanceCounter::TiledCount();
    EXPECT_EQ(batched.PruneCorners(corners.view(), high.view()), 0u);
    EXPECT_EQ(DominanceCounter::Count() - total_before, kSky);
    EXPECT_EQ(DominanceCounter::TiledCount() - tiled_before, kSky);

    total_before = DominanceCounter::Count();
    tiled_before = DominanceCounter::TiledCount();
    EXPECT_EQ(batched.PruneCorners(corners.view(), trap.view()), 0u);
    EXPECT_EQ(DominanceCounter::Count() - total_before, kSky + kSky * kCorners);
    EXPECT_EQ(DominanceCounter::TiledCount() - tiled_before,
              kSky + kSky * kCorners);

    total_before = DominanceCounter::Count();
    tiled_before = DominanceCounter::TiledCount();
    EXPECT_EQ(batched.PruneCorners(corners.view(), saturating.view()),
              corners.view().FullMask());
    EXPECT_EQ(DominanceCounter::Count() - total_before, kSky + kCorners);
    EXPECT_EQ(DominanceCounter::TiledCount() - tiled_before, kSky + kCorners);
  }

  // The scalar kernel counts per visited (corner, skyline) pair with an
  // early exit on the first dominator, and never touches the tiled
  // counter: the full rectangle when nothing dominates, one pair per
  // corner against the saturating skyline's leading origin.
  const DominanceKernel scalar(DomKernel::kScalar);
  uint64_t total_before = DominanceCounter::Count();
  uint64_t tiled_before = DominanceCounter::TiledCount();
  EXPECT_EQ(scalar.PruneCorners(corners.view(), high.view()), 0u);
  EXPECT_EQ(DominanceCounter::Count() - total_before, kCorners * kSky);

  total_before = DominanceCounter::Count();
  EXPECT_EQ(scalar.PruneCorners(corners.view(), trap.view()), 0u);
  EXPECT_EQ(DominanceCounter::Count() - total_before, kCorners * kSky);

  total_before = DominanceCounter::Count();
  EXPECT_EQ(scalar.PruneCorners(corners.view(), saturating.view()),
            corners.view().FullMask());
  EXPECT_EQ(DominanceCounter::Count() - total_before, kCorners);
  EXPECT_EQ(DominanceCounter::TiledCount() - tiled_before, 0u);
}

// ---------------------------------------------------------------------------
// Randomized differential test: the three flavours must produce identical
// masks bit for bit, across every tile occupancy, a spread of dims, and a
// value palette that forces ties, full-row equality, and extreme
// magnitudes (the simd sweeps compare lanes of padded columns, so the
// ragged cases and the +-max coordinates are the interesting ones).

TEST(DominanceKernelTest, FlavoursProduceIdenticalMasks) {
  constexpr Coord kMax = std::numeric_limits<double>::max();
  constexpr Coord kPalette[] = {-kMax, -2.0, 0.0, 0.5, 1.0, 1.5, 2.0, kMax};
  constexpr size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);
  Rng rng(20260806);

  const DominanceKernel scalar(DomKernel::kScalar);
  const DominanceKernel tiled(DomKernel::kTiled);
  const DominanceKernel simd(DomKernel::kSimd);

  for (const Dim dims : {Dim{2}, Dim{4}, Dim{8}, Dim{12}}) {
    std::vector<Coord> probe(dims);
    std::vector<Coord> point(dims);
    for (size_t rows = 1; rows <= kTileRows; ++rows) {
      for (Dim d = 0; d < dims; ++d) {
        probe[d] = kPalette[rng.NextInt(0, kPaletteSize - 1)];
      }
      Tile tile(dims);
      for (size_t r = 0; r < rows; ++r) {
        if (r % 7 == 3) {
          // Exact duplicate of the probe: ties on every dimension.
          tile.PushRow(static_cast<RowId>(r), probe);
          continue;
        }
        for (Dim d = 0; d < dims; ++d) {
          // Mostly probe-adjacent values so single-dimension ties are
          // common, with occasional fresh palette draws.
          point[d] = rng.NextInt(0, 3) == 0
                         ? kPalette[rng.NextInt(0, kPaletteSize - 1)]
                         : probe[d] + static_cast<Coord>(rng.NextInt(0, 2)) - 1.0;
        }
        tile.PushRow(static_cast<RowId>(r), point);
      }

      const TileView view = tile.view();
      const uint64_t want_dominated = scalar.FilterDominated(probe, view);
      const uint64_t want_dominators = scalar.FilterDominators(probe, view);
      const uint64_t want_weak = scalar.FilterWeaklyDominated(probe, view);
      for (const DominanceKernel* kernel : {&tiled, &simd}) {
        ASSERT_EQ(kernel->FilterDominated(probe, view), want_dominated)
            << "dims=" << dims << " rows=" << rows;
        ASSERT_EQ(kernel->FilterDominators(probe, view), want_dominators)
            << "dims=" << dims << " rows=" << rows;
        ASSERT_EQ(kernel->FilterWeaklyDominated(probe, view), want_weak)
            << "dims=" << dims << " rows=" << rows;
        ASSERT_EQ(kernel->AnyDominator(probe, view), want_dominators != 0)
            << "dims=" << dims << " rows=" << rows;
        const BlockClassification cls = kernel->ClassifyBlock(probe, view);
        ASSERT_EQ(cls.dominated, want_dominated)
            << "dims=" << dims << " rows=" << rows;
        ASSERT_EQ(cls.dominators, want_dominators)
            << "dims=" << dims << " rows=" << rows;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Tile containers.

TEST(TileSetTest, AppendCompactAndDropPreserveOrder) {
  TileSet tiles(2);
  const std::vector<Coord> p{1.0, 2.0};
  for (RowId r = 0; r < 100; ++r) tiles.Append(r, p);
  ASSERT_EQ(tiles.size(), 100u);
  ASSERT_EQ(tiles.tiles().size(), 2u);
  EXPECT_EQ(tiles.tiles()[0].rows(), kTileRows);
  EXPECT_EQ(tiles.tiles()[1].rows(), 100u - kTileRows);

  // Keep only even rows of tile 0; ids must survive compaction in order.
  uint64_t keep = 0;
  for (size_t r = 0; r < kTileRows; r += 2) keep |= uint64_t{1} << r;
  tiles.CompactTile(0, keep);
  EXPECT_EQ(tiles.tiles()[0].rows(), kTileRows / 2);
  for (size_t r = 0; r < kTileRows / 2; ++r) {
    EXPECT_EQ(tiles.tiles()[0].id(r), static_cast<RowId>(2 * r));
  }

  tiles.CompactTile(1, 0);  // empty it out
  tiles.DropEmptyTiles();
  ASSERT_EQ(tiles.tiles().size(), 1u);
  EXPECT_EQ(tiles.size(), kTileRows / 2);
}

// ---------------------------------------------------------------------------
// Algorithm parity: every skyline algorithm, scalar vs tiled vs simd.

class KernelParityTest : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(KernelParityTest, SkylineAlgorithmsMatchScalar) {
  const DataSet data = GenerateWorkload(GetParam(), 3000, 4, 99).value();

  const auto tree = RTree::BulkLoad(data).value();
  const auto bnl = SkylineBNL(data, DomKernel::kScalar).rows;
  const auto sfs = SkylineSFS(data, DomKernel::kScalar).rows;
  const auto dc = SkylineDC(data, 256, DomKernel::kScalar).rows;
  const auto bbs = SkylineBBS(data, tree, DomKernel::kScalar).value().rows;
  for (const DomKernel kind : {DomKernel::kTiled, DomKernel::kSimd}) {
    EXPECT_EQ(SkylineBNL(data, kind).rows, bnl);
    EXPECT_EQ(SkylineSFS(data, kind).rows, sfs);
    EXPECT_EQ(SkylineDC(data, 256, kind).rows, dc);
    EXPECT_EQ(SkylineBBS(data, tree, kind).value().rows, bbs);
  }
}

TEST_P(KernelParityTest, SigGenIfMatchesScalarExactly) {
  const DataSet data = GenerateWorkload(GetParam(), 2000, 4, 17).value();
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(32, data.size(), 5);

  const auto scalar = SigGenIF(data, skyline, family, DomKernel::kScalar).value();
  for (const DomKernel kind : {DomKernel::kTiled, DomKernel::kSimd}) {
    const auto batched = SigGenIF(data, skyline, family, kind).value();
    EXPECT_EQ(batched.domination_scores, scalar.domination_scores);
    for (size_t j = 0; j < skyline.size(); ++j) {
      for (size_t i = 0; i < 32; ++i) {
        ASSERT_EQ(batched.signatures.at(j, i), scalar.signatures.at(j, i));
      }
    }
    // The IF pass is exhaustive — no early exits for batching to forgo —
    // so even the dominance counts agree exactly: (n - m) * m.
    EXPECT_EQ(batched.dominance_checks, scalar.dominance_checks);
  }
  EXPECT_EQ(scalar.dominance_checks,
            (data.size() - skyline.size()) * skyline.size());
}

TEST_P(KernelParityTest, GammaSetsMatchScalar) {
  const DataSet data = GenerateWorkload(GetParam(), 1500, 4, 23).value();
  const auto skyline = SkylineSFS(data).rows;

  const GammaSets scalar = GammaSets::Compute(data, skyline, DomKernel::kScalar);
  for (const DomKernel kind : {DomKernel::kTiled, DomKernel::kSimd}) {
    const GammaSets batched = GammaSets::Compute(data, skyline, kind);
    ASSERT_EQ(batched.size(), scalar.size());
    for (size_t j = 0; j < scalar.size(); ++j) {
      EXPECT_EQ(batched.DominationScore(j), scalar.DominationScore(j));
      EXPECT_EQ(batched.gamma(j), scalar.gamma(j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, KernelParityTest,
                         ::testing::Values(WorkloadKind::kIndependent,
                                           WorkloadKind::kCorrelated,
                                           WorkloadKind::kAnticorrelated),
                         [](const auto& info) {
                           switch (info.param) {
                             case WorkloadKind::kIndependent: return "IND";
                             case WorkloadKind::kCorrelated: return "CORR";
                             case WorkloadKind::kAnticorrelated: return "ANT";
                             default: return "other";
                           }
                         });

TEST(KernelFallbackTest, TinyInputsFallBackToScalarCounts) {
  // Below one tile every batched request runs the scalar reference, so
  // even the dominance counts match.
  const DataSet data = GenerateIndependent(40, 3, 3);
  const auto scalar = SkylineSFS(data, DomKernel::kScalar);
  for (const DomKernel kind : {DomKernel::kTiled, DomKernel::kSimd}) {
    const auto batched = SkylineSFS(data, kind);
    EXPECT_EQ(batched.rows, scalar.rows);
    EXPECT_EQ(batched.dominance_checks, scalar.dominance_checks);
  }
}

TEST(KernelFallbackTest, EffectiveKernelAppliesBothDowngrades) {
  // Small-input downgrade: any batched flavour below one tile of
  // candidates runs the scalar reference.
  EXPECT_EQ(EffectiveKernel(DomKernel::kTiled, kTileRows - 1), DomKernel::kScalar);
  EXPECT_EQ(EffectiveKernel(DomKernel::kSimd, kTileRows - 1), DomKernel::kScalar);
  EXPECT_EQ(EffectiveKernel(DomKernel::kScalar, 1u << 20), DomKernel::kScalar);
  EXPECT_EQ(EffectiveKernel(DomKernel::kTiled, kTileRows), DomKernel::kTiled);

  // Missing-ISA downgrade: kSimd survives only when the runtime probe
  // found a vector unit; otherwise it degrades to kTiled (and then to
  // kScalar if the input is also small — the small-input rule wins).
  const DomKernel simd_large = EffectiveKernel(DomKernel::kSimd, kTileRows);
  EXPECT_EQ(simd_large, SimdAvailable() ? DomKernel::kSimd : DomKernel::kTiled);
}

TEST(KernelParseTest, ParseAndPrint) {
  EXPECT_EQ(ParseDomKernel("scalar").value(), DomKernel::kScalar);
  EXPECT_EQ(ParseDomKernel("tiled").value(), DomKernel::kTiled);
  EXPECT_EQ(ParseDomKernel("simd").value(), DomKernel::kSimd);
  EXPECT_FALSE(ParseDomKernel("avx2").ok());  // ISA names are not flavours
  EXPECT_STREQ(ToString(DomKernel::kScalar), "scalar");
  EXPECT_STREQ(ToString(DomKernel::kTiled), "tiled");
  EXPECT_STREQ(ToString(DomKernel::kSimd), "simd");
}

// ---------------------------------------------------------------------------
// Streaming parity.

TEST(KernelStreamingTest, BatchedStreamsMatchScalarStream) {
  const DataSet data = GenerateWorkload(WorkloadKind::kAnticorrelated, 800, 3, 31).value();
  StreamingSkyDiver scalar(3, 24, 77, 1 << 12, DomKernel::kScalar);
  StreamingSkyDiver tiled(3, 24, 77, 1 << 12, DomKernel::kTiled);
  StreamingSkyDiver simd(3, 24, 77, 1 << 12, DomKernel::kSimd);
  for (RowId r = 0; r < data.size(); ++r) {
    ASSERT_TRUE(scalar.Insert(data.row(r)).ok());
    ASSERT_TRUE(tiled.Insert(data.row(r)).ok());
    ASSERT_TRUE(simd.Insert(data.row(r)).ok());
  }
  const auto rows = scalar.SkylineRows();
  for (const StreamingSkyDiver* batched : {&tiled, &simd}) {
    ASSERT_EQ(batched->SkylineRows(), rows);
    for (RowId r : rows) {
      EXPECT_EQ(batched->Signature(r).value(), scalar.Signature(r).value());
      EXPECT_EQ(batched->DominationScore(r).value(),
                scalar.DominationScore(r).value());
    }
    EXPECT_EQ(batched->stats().demotions, scalar.stats().demotions);
    EXPECT_EQ(batched->stats().signature_updates,
              scalar.stats().signature_updates);
  }
}

// ---------------------------------------------------------------------------
// Pooled dominance-check accounting (the thread_local undercount fix).

TEST(PooledCountingTest, ParallelSigGenIfReportsSerialCounts) {
  const DataSet data = GenerateWorkload(WorkloadKind::kIndependent, 3000, 4, 43).value();
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(16, data.size(), 3);
  ThreadPool pool(4);

  for (const DomKernel kernel : kAllKernels) {
    const auto serial = SigGenIF(data, skyline, family, kernel).value();
    const auto pooled = ParallelSigGenIF(data, skyline, family, pool, kernel).value();
    // The IF pass does the same (n - m) x m work however it is sharded.
    EXPECT_GT(pooled.dominance_checks, 0u);
    EXPECT_EQ(pooled.dominance_checks, serial.dominance_checks);
    EXPECT_EQ(pooled.domination_scores, serial.domination_scores);
  }
}

TEST(PooledCountingTest, ParallelSkylineReportsNonZeroCounts) {
  const DataSet data = GenerateWorkload(WorkloadKind::kIndependent, 3000, 4, 47).value();
  ThreadPool pool(4);
  const SkylineResult pooled = ParallelSkyline(data, pool);
  EXPECT_EQ(pooled.rows, SkylineSFS(data).rows);
  EXPECT_GT(pooled.dominance_checks, 0u);
}

TEST(PooledCountingTest, HarvestFoldsIntoCallerCounters) {
  const DataSet data = GenerateWorkload(WorkloadKind::kIndependent, 2000, 4, 53).value();
  ThreadPool pool(4);
  const uint64_t before = DominanceCounter::Count();
  (void)ParallelSkyline(data, pool);
  // Pool-side work must be visible to the calling thread's counter (this
  // is what stage-level accounting relies on).
  EXPECT_GT(DominanceCounter::Count() - before, 0u);
}

// ---------------------------------------------------------------------------
// Engine-level parity: whole plans, scalar vs tiled, serial and pooled.

TEST(KernelPlanTest, PlanCarriesKernelAndExplainPrintsIt) {
  SkyDiverConfig config;
  EXPECT_EQ(config.kernel, DomKernel::kSimd);  // planner default
  auto plan = Planner::Resolve(config, PlanResources{});
  ASSERT_TRUE(plan.ok());
  if (SimdAvailable()) {
    // The plan keeps simd and the explain line names the dispatched ISA.
    EXPECT_EQ(plan->kernel, DomKernel::kSimd);
    EXPECT_NE(ExplainPlan(*plan, config).find("kernel=simd("), std::string::npos);
  } else {
    // Missing-ISA downgrade happens at plan time, not execution time.
    EXPECT_EQ(plan->kernel, DomKernel::kTiled);
    EXPECT_NE(ExplainPlan(*plan, config).find("kernel=tiled"), std::string::npos);
  }

  config.kernel = DomKernel::kTiled;
  plan = Planner::Resolve(config, PlanResources{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->kernel, DomKernel::kTiled);
  EXPECT_NE(ExplainPlan(*plan, config).find("kernel=tiled"), std::string::npos);

  config.kernel = DomKernel::kScalar;
  plan = Planner::Resolve(config, PlanResources{});
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(ExplainPlan(*plan, config).find("kernel=scalar"), std::string::npos);
}

TEST(KernelPlanTest, EnginePlansMatchAcrossKernelsSerialAndPooled) {
  const DataSet data = GenerateWorkload(WorkloadKind::kAnticorrelated, 2500, 4, 61).value();

  for (const size_t threads : {size_t{0}, size_t{3}}) {
    SkyDiverConfig scalar_config;
    scalar_config.k = 5;
    scalar_config.signature_size = 32;
    scalar_config.threads = threads;
    scalar_config.kernel = DomKernel::kScalar;

    auto run = [&](const SkyDiverConfig& config) {
      const PlanResources resources;
      const Plan plan = Planner::Resolve(config, resources).value();
      QueryContext ctx(config);
      return Engine::Execute(ctx, plan, config, data, resources).value();
    };
    const EngineOutput scalar_out = run(scalar_config);

    for (const DomKernel kind : {DomKernel::kTiled, DomKernel::kSimd}) {
      SkyDiverConfig batched_config = scalar_config;
      batched_config.kernel = kind;
      const EngineOutput batched_out = run(batched_config);

      EXPECT_EQ(batched_out.report.skyline, scalar_out.report.skyline);
      EXPECT_EQ(batched_out.report.selected_rows, scalar_out.report.selected_rows);
      EXPECT_EQ(batched_out.domination_scores, scalar_out.domination_scores);
      ASSERT_EQ(batched_out.signatures.columns(), scalar_out.signatures.columns());
      for (size_t j = 0; j < scalar_out.signatures.columns(); ++j) {
        for (size_t i = 0; i < 32; ++i) {
          ASSERT_EQ(batched_out.signatures.at(j, i), scalar_out.signatures.at(j, i));
        }
      }
    }
  }
}

TEST(KernelPlanTest, PooledStagesReportSerialMatchingDominanceChecks) {
  // Anticorrelated so the skyline comfortably exceeds one 64-row tile.
  const DataSet data =
      GenerateWorkload(WorkloadKind::kAnticorrelated, 2500, 4, 71).value();

  auto run = [&](size_t threads) {
    SkyDiverConfig config;
    config.k = 5;
    config.signature_size = 16;
    config.threads = threads;
    const PlanResources resources;
    const Plan plan = Planner::Resolve(config, resources).value();
    QueryContext ctx(config);
    return Engine::Execute(ctx, plan, config, data, resources).value();
  };
  const EngineOutput serial = run(0);
  const EngineOutput pooled = run(2);

  // Before the harvest fix, pooled fingerprint stages reported 0 checks.
  EXPECT_GT(pooled.report.skyline_phase.dominance_checks, 0u);
  EXPECT_GT(pooled.report.fingerprint_phase.dominance_checks, 0u);
  // The IF fingerprint pass is exhaustive: pooled == serial exactly.
  EXPECT_EQ(pooled.report.fingerprint_phase.dominance_checks,
            serial.report.fingerprint_phase.dominance_checks);
  // Default plans are batched (simd, or tiled without a vector ISA); with
  // m >= one tile every fingerprint check lands on both counters.
  EXPECT_EQ(pooled.report.fingerprint_phase.dominance_checks_tiled,
            pooled.report.fingerprint_phase.dominance_checks);
}

}  // namespace
}  // namespace skydiver
