// Unit tests for src/minhash: hash family, signature matrix, estimator
// accuracy, and both signature generators (IF / IB) including their
// agreement with exact Jaccard distances.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/gamma.h"
#include "datagen/generators.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

TEST(MinHashFamilyTest, PrimeExceedsUniverse) {
  const auto family = MinHashFamily::Create(16, 1000, 1);
  EXPECT_EQ(family.size(), 16u);
  EXPECT_GT(family.prime(), 1000u);
}

TEST(MinHashFamilyTest, HashesStayBelowPrime) {
  const auto family = MinHashFamily::Create(8, 500, 2);
  for (size_t i = 0; i < family.size(); ++i) {
    for (uint64_t x : {0ULL, 1ULL, 250ULL, 499ULL}) {
      EXPECT_LT(family.Apply(i, x), family.prime());
    }
  }
}

TEST(MinHashFamilyTest, LinearStepProperty) {
  // h(x+1) = h(x) + a (mod P) — the identity the IB range updates rely on.
  const auto family = MinHashFamily::Create(8, 500, 3);
  for (size_t i = 0; i < family.size(); ++i) {
    for (uint64_t x = 0; x < 100; ++x) {
      const uint64_t expected = (family.Apply(i, x) + family.StepOf(i)) % family.prime();
      EXPECT_EQ(family.Apply(i, x + 1), expected);
    }
  }
}

TEST(MinHashFamilyTest, IsPermutationOnSmallDomain) {
  const auto family = MinHashFamily::Create(4, 50, 4);
  for (size_t i = 0; i < family.size(); ++i) {
    std::vector<bool> seen(family.prime(), false);
    for (uint64_t x = 0; x < family.prime(); ++x) {
      const uint64_t h = family.Apply(i, x);
      EXPECT_FALSE(seen[h]) << "collision in hash " << i;
      seen[h] = true;
    }
  }
}

TEST(SignatureMatrixTest, UpdateMinAndEstimate) {
  SignatureMatrix sig(4, 2);
  EXPECT_EQ(sig.at(0, 0), kEmptySlot);
  sig.UpdateMin(0, 0, 10);
  sig.UpdateMin(0, 0, 20);  // no-op, larger
  EXPECT_EQ(sig.at(0, 0), 10u);
  sig.UpdateMin(0, 0, 5);
  EXPECT_EQ(sig.at(0, 0), 5u);
  // Columns: [5,∞,∞,∞] vs [5,∞,∞,7] -> 3 of 4 slots agree.
  sig.UpdateMin(1, 0, 5);
  sig.UpdateMin(1, 3, 7);
  EXPECT_DOUBLE_EQ(sig.EstimatedSimilarity(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(sig.EstimatedDistance(0, 1), 0.25);
}

TEST(SignatureMatrixTest, MemoryBytes) {
  SignatureMatrix sig(100, 50);
  EXPECT_EQ(sig.MemoryBytes(), 100u * 50u * sizeof(uint64_t));
}

TEST(SignatureMatrixTest, RecommendedSizeGrowsWithTighterError) {
  EXPECT_GT(RecommendedSignatureSize(0.05, 0.1, 0.01),
            RecommendedSignatureSize(0.1, 0.1, 0.01));
  EXPECT_GT(RecommendedSignatureSize(0.1, 0.1, 0.001),
            RecommendedSignatureSize(0.1, 0.1, 0.01));
}

// --------------------------------------------------------------------------
// MinHash estimator accuracy on synthetic sets with known Jaccard.
// --------------------------------------------------------------------------

TEST(MinHashEstimatorTest, ConcentratesAroundTrueJaccard) {
  // Two sets over universe [0, 3000): A = [0,2000), B = [1000,3000).
  // |A∩B| = 1000, |A∪B| = 3000 -> Js = 1/3.
  const size_t t = 400;
  const auto family = MinHashFamily::Create(t, 3000, 5);
  SignatureMatrix sig(t, 2);
  for (uint64_t x = 0; x < 3000; ++x) {
    for (size_t i = 0; i < t; ++i) {
      const uint64_t h = family.Apply(i, x);
      if (x < 2000) sig.UpdateMin(0, i, h);
      if (x >= 1000) sig.UpdateMin(1, i, h);
    }
  }
  EXPECT_NEAR(sig.EstimatedSimilarity(0, 1), 1.0 / 3.0, 0.08);
}

// --------------------------------------------------------------------------
// Signature generators.
// --------------------------------------------------------------------------

struct SigGenFixture {
  DataSet data = DataSet(1);
  std::vector<RowId> skyline;
  GammaSets gammas;

  static SigGenFixture Make(WorkloadKind kind, RowId n, Dim d, uint64_t seed) {
    SigGenFixture f;
    f.data = GenerateWorkload(kind, n, d, seed).value();
    f.skyline = SkylineSFS(f.data).rows;
    f.gammas = GammaSets::Compute(f.data, f.skyline);
    return f;
  }
};

TEST(SigGenTest, ValidatesInputs) {
  const auto f = SigGenFixture::Make(WorkloadKind::kIndependent, 200, 3, 7);
  const auto family = MinHashFamily::Create(10, f.data.size(), 1);
  EXPECT_TRUE(SigGenIF(f.data, {}, family).status().IsInvalidArgument());
  EXPECT_TRUE(SigGenIF(f.data, {9999}, family).status().IsInvalidArgument());
  const auto tiny_family = MinHashFamily::Create(10, 1, 1);
  // Prime (= 3) does not exceed the dataset size: rejected.
  EXPECT_TRUE(SigGenIF(f.data, f.skyline, tiny_family).status().IsInvalidArgument());
}

TEST(SigGenTest, IfDominationScoresAreExact) {
  const auto f = SigGenFixture::Make(WorkloadKind::kIndependent, 1500, 3, 11);
  const auto family = MinHashFamily::Create(20, f.data.size(), 2);
  auto result = SigGenIF(f.data, f.skyline, family);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->domination_scores.size(), f.skyline.size());
  for (size_t j = 0; j < f.skyline.size(); ++j) {
    EXPECT_EQ(result->domination_scores[j], f.gammas.DominationScore(j)) << j;
  }
}

TEST(SigGenTest, IbDominationScoresAreExact) {
  const auto f = SigGenFixture::Make(WorkloadKind::kIndependent, 1500, 3, 11);
  const auto family = MinHashFamily::Create(20, f.data.size(), 2);
  auto tree = RTree::BulkLoad(f.data);
  ASSERT_TRUE(tree.ok());
  auto result = SigGenIB(f.data, f.skyline, family, *tree);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < f.skyline.size(); ++j) {
    EXPECT_EQ(result->domination_scores[j], f.gammas.DominationScore(j)) << j;
  }
}

TEST(SigGenTest, IfSignatureMatchesDirectMinHashOfGamma) {
  // SigGen-IF must produce exactly min over Γ(s) of h_i(row).
  const auto f = SigGenFixture::Make(WorkloadKind::kIndependent, 800, 3, 13);
  const auto family = MinHashFamily::Create(16, f.data.size(), 3);
  auto result = SigGenIF(f.data, f.skyline, family);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < f.skyline.size(); ++j) {
    for (size_t i = 0; i < family.size(); ++i) {
      uint64_t expected = kEmptySlot;
      for (RowId r = 0; r < f.data.size(); ++r) {
        if (f.gammas.gamma(j).Test(r)) {
          expected = std::min(expected, family.Apply(i, r));
        }
      }
      EXPECT_EQ(result->signatures.at(j, i), expected) << "col " << j << " slot " << i;
    }
  }
}

using SigGenEstimatePair = std::tuple<WorkloadKind, bool>;  // workload, use index

class SigGenEstimateTest : public testing::TestWithParam<SigGenEstimatePair> {};

TEST_P(SigGenEstimateTest, EstimatedDistancesTrackExactJaccard) {
  const auto [kind, use_index] = GetParam();
  const auto f = SigGenFixture::Make(kind, 3000, 4, 17);
  const size_t t = 256;
  const auto family = MinHashFamily::Create(t, f.data.size(), 4);
  SignatureMatrix sig;
  if (use_index) {
    auto tree = RTree::BulkLoad(f.data);
    ASSERT_TRUE(tree.ok());
    auto result = SigGenIB(f.data, f.skyline, family, *tree);
    ASSERT_TRUE(result.ok());
    sig = std::move(result->signatures);
  } else {
    auto result = SigGenIF(f.data, f.skyline, family);
    ASSERT_TRUE(result.ok());
    sig = std::move(result->signatures);
  }
  const size_t m = f.skyline.size();
  ASSERT_GE(m, 3u);
  double max_err = 0.0;
  double sum_err = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      const double err =
          std::fabs(sig.EstimatedSimilarity(a, b) - f.gammas.JaccardSimilarity(a, b));
      max_err = std::max(max_err, err);
      sum_err += err;
      ++pairs;
    }
  }
  // Standard error of a t=256 Bernoulli mean is <= 0.5/16 ~ 0.031; allow a
  // generous band for the worst pair and a tight one for the mean.
  EXPECT_LT(sum_err / static_cast<double>(pairs), 0.035);
  EXPECT_LT(max_err, 0.20);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SigGenEstimateTest,
    testing::Combine(testing::Values(WorkloadKind::kIndependent,
                                     WorkloadKind::kAnticorrelated,
                                     WorkloadKind::kForestCoverLike,
                                     WorkloadKind::kRecipesLike),
                     testing::Values(false, true)),
    [](const testing::TestParamInfo<SigGenEstimatePair>& info) {
      return WorkloadKindName(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_IB" : "_IF");
    });

TEST(SigGenTest, IbReadsFewerPagesThanLinearScanOnClusteredData) {
  const auto f = SigGenFixture::Make(WorkloadKind::kForestCoverLike, 20000, 4, 19);
  const auto family = MinHashFamily::Create(50, f.data.size(), 5);
  auto tree = RTree::BulkLoad(f.data);
  ASSERT_TRUE(tree.ok());
  auto ib = SigGenIB(f.data, f.skyline, family, *tree);
  ASSERT_TRUE(ib.ok());
  auto if_result = SigGenIF(f.data, f.skyline, family);
  ASSERT_TRUE(if_result.ok());
  // IB skips fully-dominated subtrees, so it must perform far fewer
  // dominance checks than the naive per-point scan.
  EXPECT_LT(ib->dominance_checks, if_result->dominance_checks / 2);
}

TEST(SigGenTest, SequentialScanPageMath) {
  // 4 doubles + 4-byte id = 36 bytes/record; 4096/36 = 113 records/page.
  EXPECT_EQ(SequentialScanPages(113, 4, 4096), 1u);
  EXPECT_EQ(SequentialScanPages(114, 4, 4096), 2u);
  EXPECT_EQ(SequentialScanPages(0, 4, 4096), 0u);
}

TEST(SigGenTest, IbRejectsForeignTree) {
  const auto f = SigGenFixture::Make(WorkloadKind::kIndependent, 300, 3, 23);
  const DataSet other = GenerateIndependent(200, 3, 24);
  auto tree = RTree::BulkLoad(other);
  ASSERT_TRUE(tree.ok());
  const auto family = MinHashFamily::Create(10, f.data.size(), 6);
  EXPECT_TRUE(SigGenIB(f.data, f.skyline, family, *tree).status().IsInvalidArgument());
}

}  // namespace
}  // namespace skydiver
