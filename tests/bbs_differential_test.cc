// Randomized differential tests for the tile-aware BBS traversal: batch
// (SkylineBBS) and progressive (BbsScan) paths, both tree backends
// (RTree / DiskRTree), and all three kernel flavours must produce
// bit-identical skylines AND identical emission order — on data salted
// with coordinate ties and exact duplicate rows, across d = 2..12.
// Also pins the deterministic heap-order contract: equal-mindist points
// pop before nodes and in ascending row id, so duplicated points emit in
// a fixed order on every stdlib.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "datagen/generators.h"
#include "rtree/disk_rtree.h"
#include "rtree/rtree.h"
#include "skyline/bbs_scan.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

constexpr DomKernel kFlavours[] = {DomKernel::kScalar, DomKernel::kTiled,
                                   DomKernel::kSimd};
constexpr WorkloadKind kKinds[] = {WorkloadKind::kIndependent,
                                   WorkloadKind::kCorrelated,
                                   WorkloadKind::kAnticorrelated};

// Quantizes coordinates to a coarse grid (forcing single-dimension and
// full-row ties) and duplicates every 17th row exactly — the inputs where
// a nondeterministic heap tie-break would show.
DataSet TieifyWorkload(WorkloadKind kind, RowId n, Dim d, uint64_t seed) {
  const DataSet src = GenerateWorkload(kind, n, d, seed).value();
  DataSet out(d);
  std::vector<Coord> p(d);
  for (RowId r = 0; r < src.size(); ++r) {
    for (Dim i = 0; i < d; ++i) p[i] = std::round(src.at(r, i) * 16.0) / 16.0;
    out.Append(p);
    if (r % 17 == 0) out.Append(p);
  }
  return out;
}

template <typename Tree>
std::vector<RowId> Drain(const DataSet& data, const Tree& tree, DomKernel kernel,
                         uint64_t* checks = nullptr) {
  BbsScan<Tree> scan(data, tree, kernel);
  while (scan.Next()) {
  }
  if (checks != nullptr) *checks = scan.dominance_checks();
  return scan.emitted();
}

struct DiskFixture {
  std::string path;
  DiskRTree tree;
};

DiskFixture OpenDiskTree(const RTree& tree, const std::string& name) {
  std::string path = testing::TempDir() + "/" + name;
  EXPECT_TRUE(DiskRTree::Write(tree, path).ok());
  return DiskFixture{path, DiskRTree::Open(path).value()};
}

TEST(BbsDifferentialTest, FlavoursBackendsAndPathsEmitIdenticalSkylines) {
  for (const WorkloadKind kind : kKinds) {
    for (const Dim d : {Dim{2}, Dim{4}, Dim{6}, Dim{8}, Dim{10}, Dim{12}}) {
      const DataSet data = TieifyWorkload(kind, 800, d, 1000 + d);
      const std::vector<RowId> ref = SkylineSFS(data).rows;
      const auto tree = RTree::BulkLoad(data).value();
      const DiskFixture disk = OpenDiskTree(
          tree, "bbs_diff_" + std::to_string(static_cast<int>(kind)) + "_" +
                    std::to_string(d) + ".pages");

      // Reference emission sequence: scalar flavour on the memory tree.
      const std::vector<RowId> order = Drain(data, tree, DomKernel::kScalar);
      {
        std::vector<RowId> sorted = order;
        std::sort(sorted.begin(), sorted.end());
        ASSERT_EQ(sorted, ref) << "d=" << d;
      }

      for (const DomKernel flavour : kFlavours) {
        // Batch results match SFS bit for bit on both backends.
        EXPECT_EQ(SkylineBBS(data, tree, flavour).value().rows, ref)
            << ToString(flavour) << " d=" << d;
        EXPECT_EQ(SkylineBBS(data, disk.tree, flavour).value().rows, ref)
            << ToString(flavour) << " d=" << d;
        // Progressive emission sequences are identical across flavours
        // and backends — not just the same set.
        EXPECT_EQ(Drain(data, tree, flavour), order)
            << ToString(flavour) << " d=" << d;
        EXPECT_EQ(Drain(data, disk.tree, flavour), order)
            << ToString(flavour) << " d=" << d;
      }
      std::remove(disk.path.c_str());
    }
  }
}

TEST(BbsDifferentialTest, ProgressiveDrainReportsBatchCheckCounts) {
  const DataSet data = TieifyWorkload(WorkloadKind::kAnticorrelated, 1200, 6, 77);
  const auto tree = RTree::BulkLoad(data).value();
  const DiskFixture disk = OpenDiskTree(tree, "bbs_diff_checks.pages");
  for (const DomKernel flavour : kFlavours) {
    uint64_t drained = 0;
    (void)Drain(data, tree, flavour, &drained);
    EXPECT_GT(drained, 0u) << ToString(flavour);
    EXPECT_EQ(drained, SkylineBBS(data, tree, flavour).value().dominance_checks)
        << ToString(flavour);
    uint64_t disk_drained = 0;
    (void)Drain(data, disk.tree, flavour, &disk_drained);
    EXPECT_EQ(disk_drained,
              SkylineBBS(data, disk.tree, flavour).value().dominance_checks)
        << ToString(flavour);
  }
  std::remove(disk.path.c_str());
}

TEST(BbsDifferentialTest, FirstKPrefixIsStableAcrossFlavours) {
  constexpr size_t kPrefix = 20;
  const DataSet data = TieifyWorkload(WorkloadKind::kIndependent, 5000, 4, 42);
  const auto tree = RTree::BulkLoad(data).value();
  const DiskFixture disk = OpenDiskTree(tree, "bbs_diff_prefix.pages");

  const std::vector<RowId> full = Drain(data, tree, DomKernel::kScalar);
  ASSERT_GE(full.size(), kPrefix);
  const std::vector<RowId> want(full.begin(),
                                full.begin() + static_cast<ptrdiff_t>(kPrefix));

  for (const DomKernel flavour : kFlavours) {
    BbsScan<RTree> preview(data, tree, flavour);
    BbsScan<DiskRTree> disk_preview(data, disk.tree, flavour);
    for (size_t i = 0; i < kPrefix; ++i) {
      ASSERT_TRUE(preview.Next().has_value());
      ASSERT_TRUE(disk_preview.Next().has_value());
    }
    EXPECT_EQ(preview.emitted(), want) << ToString(flavour);
    EXPECT_EQ(disk_preview.emitted(), want) << ToString(flavour);
  }
  std::remove(disk.path.c_str());
}

// Regression for the heap tie-break: five skyline points share one
// mindist (sum 0.2), three of them exact duplicates. With the old
// mindist-only comparator their pop order was whatever the stdlib heap
// produced; the deterministic order is ascending row id.
TEST(BbsDifferentialTest, DuplicatePointsEmitInAscendingRowOrder) {
  DataSet data(2);
  data.Append({0.05, 0.15});  // row 0: tied mindist, incomparable
  data.Append({0.60, 0.50});  // row 1: dominated
  data.Append({0.10, 0.10});  // row 2: duplicate A
  data.Append({0.70, 0.55});  // row 3: dominated
  data.Append({0.55, 0.80});  // row 4: dominated
  data.Append({0.10, 0.10});  // row 5: duplicate A
  data.Append({0.90, 0.60});  // row 6: dominated
  data.Append({0.15, 0.05});  // row 7: tied mindist, incomparable
  data.Append({0.65, 0.95});  // row 8: dominated
  data.Append({0.10, 0.10});  // row 9: duplicate A
  const std::vector<RowId> want{0, 2, 5, 7, 9};

  const auto tree = RTree::BulkLoad(data).value();
  const DiskFixture disk = OpenDiskTree(tree, "bbs_diff_dups.pages");
  for (const DomKernel flavour : kFlavours) {
    EXPECT_EQ(Drain(data, tree, flavour), want) << ToString(flavour);
    EXPECT_EQ(Drain(data, disk.tree, flavour), want) << ToString(flavour);
  }
  std::remove(disk.path.c_str());
}

}  // namespace
}  // namespace skydiver
