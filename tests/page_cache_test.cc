// Unit tests for the two lowest layers of the disk path: the pinned,
// internally-synchronized PageCache (hit/miss/evict accounting, pin
// semantics, in-flight deduplication, prefetch) over a synthetic loader,
// and the PageFile backends (pread vs mmap parity, 64-bit offsets past
// 2 GiB, out-of-range and short-read handling).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rtree/page_cache.h"
#include "rtree/page_file.h"

namespace skydiver {
namespace {

// Synthetic loader: page id N becomes a leaf node with N+1 entries whose
// rows are all N — enough structure to verify the cache returns the right
// (and intact) node.
PageCache::Loader CountingLoader(std::atomic<int>* loads) {
  return [loads](PageId id, RTreeNode* out) {
    loads->fetch_add(1);
    out->id = id;
    out->is_leaf = true;
    RTreeEntry entry;
    entry.row = id;
    out->entries.assign(id + 1, entry);
    return Status::OK();
  };
}

TEST(PageCacheTest, HitsMissesAndLruEviction) {
  std::atomic<int> loads{0};
  PageCache cache(2, CountingLoader(&loads));
  {
    auto a = cache.Get(10);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->node().entries.size(), 11u);
  }
  { auto b = cache.Get(20); ASSERT_TRUE(b.ok()); }
  EXPECT_EQ(loads.load(), 2);
  EXPECT_EQ(cache.stats().page_reads, 2u);
  EXPECT_EQ(cache.stats().page_faults, 2u);

  // Warm hit: no new load, reads tick, faults don't.
  { auto again = cache.Get(10); ASSERT_TRUE(again.ok()); }
  EXPECT_EQ(loads.load(), 2);
  EXPECT_EQ(cache.stats().page_reads, 3u);
  EXPECT_EQ(cache.stats().page_faults, 2u);

  // Capacity 2: reading a third page evicts the LRU page (20, since 10
  // was just touched).
  { auto c = cache.Get(30); ASSERT_TRUE(c.ok()); }
  EXPECT_TRUE(cache.Contains(10));
  EXPECT_FALSE(cache.Contains(20));
  EXPECT_TRUE(cache.Contains(30));
  EXPECT_EQ(cache.cached_pages(), 2u);
}

TEST(PageCacheTest, PinnedFramesAreNeverEvicted) {
  std::atomic<int> loads{0};
  PageCache cache(1, CountingLoader(&loads));
  auto pinned = cache.Get(5);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(cache.pinned_pages(), 1u);

  // Churn far past capacity while the pin lives; the pinned frame and its
  // payload must survive (the cache runs transiently over capacity).
  for (PageId id = 100; id < 120; ++id) {
    auto r = cache.Get(id);
    ASSERT_TRUE(r.ok());
  }
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_EQ(pinned->node().entries.size(), 6u);
  EXPECT_EQ(pinned->node().entries.front().row, 5u);

  // Dropping the pin makes the frame evictable again.
  pinned->Reset();
  EXPECT_EQ(cache.pinned_pages(), 0u);
  { auto r = cache.Get(200); ASSERT_TRUE(r.ok()); }
  EXPECT_FALSE(cache.Contains(5));
  EXPECT_EQ(cache.cached_pages(), 1u);
}

TEST(PageCacheTest, MovedFromRefHoldsNoPin) {
  std::atomic<int> loads{0};
  PageCache cache(4, CountingLoader(&loads));
  auto a = cache.Get(1);
  ASSERT_TRUE(a.ok());
  PageRef moved = std::move(a.value());
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_EQ(cache.pinned_pages(), 1u);
  moved.Reset();
  EXPECT_FALSE(static_cast<bool>(moved));
  EXPECT_EQ(cache.pinned_pages(), 0u);
}

TEST(PageCacheTest, ConcurrentMissesIssueOneLoad) {
  std::atomic<int> loads{0};
  PageCache cache(8, [&loads](PageId id, RTreeNode* out) {
    loads.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    out->id = id;
    RTreeEntry entry;
    entry.row = id;
    out->entries.assign(1, entry);
    return Status::OK();
  });
  // Raw threads on purpose: the cache’s own synchronization is the thing
  // under test, so the exerciser must not share the pool it guards.
  std::vector<std::thread> threads;  // skylint:allow(determinism)
  std::atomic<int> ok{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto r = cache.Get(42);
      if (r.ok() && r->node().entries.front().row == 42u) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(loads.load(), 1);  // one physical read; seven threads parked
  EXPECT_EQ(cache.stats().page_reads, 8u);
  EXPECT_EQ(cache.stats().page_faults, 1u);
}

TEST(PageCacheTest, FailedLoadPropagatesAndIsNotCached) {
  std::atomic<int> loads{0};
  PageCache cache(4, [&loads](PageId id, RTreeNode* out) -> Status {
    loads.fetch_add(1);
    if (id == 13) return Status::IoError("page 13 is cursed");
    out->id = id;
    return Status::OK();
  });
  auto bad = cache.Get(13);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsIoError());
  EXPECT_FALSE(cache.Contains(13));
  // Not cached: the next read retries the loader (and fails again).
  EXPECT_FALSE(cache.Get(13).ok());
  EXPECT_EQ(loads.load(), 2);
  EXPECT_TRUE(cache.Get(14).ok());  // other pages are unaffected
}

TEST(PageCacheTest, PrefetchWarmsWithoutPinningOrFaulting) {
  std::atomic<int> loads{0};
  PageCache cache(4, CountingLoader(&loads));
  cache.Prefetch(7);
  EXPECT_TRUE(cache.Contains(7));
  EXPECT_EQ(cache.pinned_pages(), 0u);
  const IoStats after_prefetch = cache.stats();
  EXPECT_EQ(after_prefetch.page_prefetches, 1u);
  EXPECT_EQ(after_prefetch.page_reads, 0u);
  EXPECT_EQ(after_prefetch.page_faults, 0u);

  // The demand read of a prefetched page is a pure hit.
  auto r = cache.Get(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(cache.stats().page_reads, 1u);
  EXPECT_EQ(cache.stats().page_faults, 0u);

  // Prefetch of a resident page is a no-op.
  cache.Prefetch(7);
  EXPECT_EQ(cache.stats().page_prefetches, 1u);
}

TEST(PageCacheTest, PrefetchSwallowsLoadErrors) {
  PageCache cache(4, [](PageId, RTreeNode*) -> Status {
    return Status::IoError("nope");
  });
  cache.Prefetch(1);  // must not throw, crash, or cache anything
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.stats().page_prefetches, 1u);
  // The demand read surfaces the error the prefetch swallowed.
  EXPECT_TRUE(cache.Get(1).status().IsIoError());
}

TEST(PageCacheTest, ClearDropsUnpinnedKeepsPinned) {
  std::atomic<int> loads{0};
  PageCache cache(8, CountingLoader(&loads));
  auto pinned = cache.Get(1);
  ASSERT_TRUE(pinned.ok());
  { auto r = cache.Get(2); ASSERT_TRUE(r.ok()); }
  { auto r = cache.Get(3); ASSERT_TRUE(r.ok()); }
  cache.Clear();
  EXPECT_TRUE(cache.Contains(1));   // pinned: survives
  EXPECT_FALSE(cache.Contains(2));  // unpinned: dropped
  EXPECT_FALSE(cache.Contains(3));
  EXPECT_EQ(pinned->node().entries.size(), 2u);  // payload intact
}

TEST(PageCacheTest, ConcurrentMixedWorkloadReturnsCorrectNodes) {
  std::atomic<int> loads{0};
  PageCache cache(4, CountingLoader(&loads));  // tiny: constant eviction
  std::atomic<int> failures{0};
  // Raw threads on purpose: the cache’s own synchronization is the thing
  // under test, so the exerciser must not share the pool it guards.
  std::vector<std::thread> threads;  // skylint:allow(determinism)
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const PageId id = static_cast<PageId>((t * 7 + i * 13) % 32);
        if (i % 5 == 0) cache.Prefetch((id + 1) % 32);
        auto r = cache.Get(id);
        if (!r.ok() || r->node().id != id ||
            r->node().entries.size() != id + 1 ||
            r->node().entries.front().row != id) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.stats().page_reads, 8u * 200u);
}

// ---------------------------------------------------------------------------
// PageFile
// ---------------------------------------------------------------------------

std::string WritePatternFile(const std::string& name, uint32_t pages,
                             uint32_t page_size) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  std::vector<char> page(page_size);
  for (uint32_t p = 0; p < pages; ++p) {
    for (uint32_t i = 0; i < page_size; ++i) {
      page[i] = static_cast<char>((p * 31 + i) & 0xff);
    }
    out.write(page.data(), page_size);
  }
  return path;
}

TEST(PageFileTest, PreadAndMmapReturnIdenticalBytes) {
  const uint32_t page_size = 512;
  const std::string path = WritePatternFile("pf_parity.bin", 8, page_size);
  auto pread_file = PageFile::Open(path, DiskBackend::kPread);
  auto mmap_file = PageFile::Open(path, DiskBackend::kMmap);
  ASSERT_TRUE(pread_file.ok()) << pread_file.status().ToString();
  ASSERT_TRUE(mmap_file.ok()) << mmap_file.status().ToString();
  EXPECT_EQ(pread_file->file_size(), 8u * page_size);

  std::vector<unsigned char> scratch;
  for (uint64_t p = 0; p < 8; ++p) {
    auto a = pread_file->ViewPage(p, page_size, scratch);
    std::vector<unsigned char> ignored;
    auto b = mmap_file->ViewPage(p, page_size, ignored);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().size(), page_size);
    EXPECT_TRUE(std::equal(a.value().begin(), a.value().end(), b.value().begin()))
        << "page " << p;
    EXPECT_TRUE(ignored.empty());  // mmap is zero-copy
  }
  std::remove(path.c_str());
}

TEST(PageFileTest, OutOfRangePagesAreIoErrors) {
  const uint32_t page_size = 256;
  const std::string path = WritePatternFile("pf_range.bin", 4, page_size);
  // Leave a partial page at the tail: [4 full pages][100 bytes].
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    std::vector<char> tail(100, 'z');
    out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  }
  for (const DiskBackend backend : {DiskBackend::kPread, DiskBackend::kMmap}) {
    auto file = PageFile::Open(path, backend);
    ASSERT_TRUE(file.ok());
    std::vector<unsigned char> scratch;
    EXPECT_TRUE(file->ViewPage(3, page_size, scratch).ok()) << ToString(backend);
    // Page 4 exists only partially: a short read must be an error, never a
    // partial buffer or UB.
    EXPECT_TRUE(file->ViewPage(4, page_size, scratch).status().IsIoError())
        << ToString(backend);
    EXPECT_TRUE(file->ViewPage(1u << 20, page_size, scratch).status().IsIoError())
        << ToString(backend);
  }
  std::remove(path.c_str());
}

// Regression for the 2 GiB offset truncation: the predecessor computed
// file offsets in long-sized arithmetic, so page index * page_size wrapped
// past 2^31. Both backends must address a (sparse) file beyond 2 GiB.
TEST(PageFileTest, OffsetsPastTwoGiBAddressCorrectly) {
  const uint32_t page_size = 4096;
  const uint64_t two_gib = uint64_t{1} << 31;
  const uint64_t far_index = two_gib / page_size + 3;  // offset > 2 GiB
  const std::string path = testing::TempDir() + "/pf_big.bin";
  {
    // Sparse file: seek to the far page and write a marker — allocates a
    // few KiB of real blocks, not 2 GiB.
    std::ofstream out(path, std::ios::binary);
    out.seekp(static_cast<std::streamoff>(far_index * page_size));
    std::vector<char> marker(page_size);
    for (uint32_t i = 0; i < page_size; ++i) {
      marker[i] = static_cast<char>((i * 7 + 1) & 0xff);
    }
    out.write(marker.data(), page_size);
  }
  for (const DiskBackend backend : {DiskBackend::kPread, DiskBackend::kMmap}) {
    auto file = PageFile::Open(path, backend);
    ASSERT_TRUE(file.ok()) << ToString(backend) << ": " << file.status().ToString();
    EXPECT_EQ(file->file_size(), (far_index + 1) * page_size);
    std::vector<unsigned char> scratch;
    auto page = file->ViewPage(far_index, page_size, scratch);
    ASSERT_TRUE(page.ok()) << ToString(backend) << ": " << page.status().ToString();
    for (uint32_t i = 0; i < page_size; i += 509) {
      ASSERT_EQ(page.value()[i], static_cast<unsigned char>((i * 7 + 1) & 0xff))
          << ToString(backend) << " byte " << i;
    }
    // A hole page reads as zeros (not garbage, not an error).
    auto hole = file->ViewPage(1, page_size, scratch);
    ASSERT_TRUE(hole.ok());
    EXPECT_EQ(hole.value()[0], 0u);
  }
  std::remove(path.c_str());
}

TEST(PageFileTest, ParseAndPrintBackendNames) {
  EXPECT_EQ(ParseDiskBackend("pread").value(), DiskBackend::kPread);
  EXPECT_EQ(ParseDiskBackend("mmap").value(), DiskBackend::kMmap);
  EXPECT_FALSE(ParseDiskBackend("io_uring").ok());
  EXPECT_EQ(std::string(ToString(DiskBackend::kPread)), "pread");
  EXPECT_EQ(std::string(ToString(DiskBackend::kMmap)), "mmap");
}

TEST(PageFileTest, MissingFileIsAnIoError) {
  EXPECT_TRUE(PageFile::Open("/nonexistent/pf.bin").status().IsIoError());
  EXPECT_TRUE(
      PageFile::Open("/nonexistent/pf.bin", DiskBackend::kMmap).status().IsIoError());
}

}  // namespace
}  // namespace skydiver
