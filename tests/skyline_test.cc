// Unit tests for src/skyline: BNL, SFS, BBS correctness and cross-agreement.

#include <gtest/gtest.h>

#include <vector>

#include "datagen/generators.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

TEST(SkylineTest, ToyExample) {
  DataSet d(2);
  d.Append({1.0, 4.0});
  d.Append({2.0, 1.0});
  d.Append({2.0, 5.0});
  d.Append({3.0, 2.0});
  d.Append({4.0, 6.0});
  const std::vector<RowId> expected{0, 1};
  EXPECT_EQ(SkylineBNL(d).rows, expected);
  EXPECT_EQ(SkylineSFS(d).rows, expected);
  auto tree = RTree::BulkLoad(d);
  ASSERT_TRUE(tree.ok());
  auto bbs = SkylineBBS(d, *tree);
  ASSERT_TRUE(bbs.ok());
  EXPECT_EQ(bbs->rows, expected);
}

TEST(SkylineTest, SinglePointIsItsOwnSkyline) {
  DataSet d(3);
  d.Append({0.1, 0.2, 0.3});
  EXPECT_EQ(SkylineBNL(d).rows, std::vector<RowId>{0});
  EXPECT_EQ(SkylineSFS(d).rows, std::vector<RowId>{0});
}

TEST(SkylineTest, TotallyOrderedChainHasOneSkylinePoint) {
  DataSet d(2);
  for (int i = 0; i < 50; ++i) {
    d.Append({static_cast<double>(i), static_cast<double>(i)});
  }
  EXPECT_EQ(SkylineBNL(d).rows, std::vector<RowId>{0});
  EXPECT_EQ(SkylineSFS(d).rows, std::vector<RowId>{0});
}

TEST(SkylineTest, AntiDiagonalIsAllSkyline) {
  DataSet d(2);
  for (int i = 0; i < 50; ++i) {
    d.Append({static_cast<double>(i), static_cast<double>(49 - i)});
  }
  EXPECT_EQ(SkylineBNL(d).rows.size(), 50u);
  EXPECT_EQ(SkylineSFS(d).rows.size(), 50u);
}

TEST(SkylineTest, DuplicatesAllKept) {
  DataSet d(2);
  d.Append({1.0, 1.0});
  d.Append({1.0, 1.0});
  d.Append({2.0, 2.0});
  const std::vector<RowId> expected{0, 1};
  EXPECT_EQ(SkylineBNL(d).rows, expected);
  EXPECT_EQ(SkylineSFS(d).rows, expected);
  auto tree = RTree::BulkLoad(d);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(SkylineBBS(d, *tree)->rows, expected);
}

TEST(SkylineTest, IsSkylineValidator) {
  DataSet d(2);
  d.Append({1.0, 4.0});
  d.Append({2.0, 1.0});
  d.Append({2.0, 5.0});
  EXPECT_TRUE(IsSkyline(d, {0, 1}));
  EXPECT_FALSE(IsSkyline(d, {0}));        // missing a skyline point
  EXPECT_FALSE(IsSkyline(d, {0, 1, 2}));  // includes a dominated point
  EXPECT_FALSE(IsSkyline(d, {0, 99}));    // out of range
}

class SkylineAgreementTest
    : public testing::TestWithParam<std::tuple<WorkloadKind, Dim>> {};

TEST_P(SkylineAgreementTest, AllAlgorithmsAgreeAndAreCorrect) {
  const auto [kind, dims] = GetParam();
  auto data = GenerateWorkload(kind, 2000, dims, 131);
  ASSERT_TRUE(data.ok());
  const auto bnl = SkylineBNL(*data);
  const auto sfs = SkylineSFS(*data);
  EXPECT_EQ(bnl.rows, sfs.rows);
  auto tree = RTree::BulkLoad(*data);
  ASSERT_TRUE(tree.ok());
  auto bbs = SkylineBBS(*data, *tree);
  ASSERT_TRUE(bbs.ok());
  EXPECT_EQ(bbs->rows, sfs.rows);
  EXPECT_TRUE(IsSkyline(*data, sfs.rows));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SkylineAgreementTest,
    testing::Combine(testing::Values(WorkloadKind::kIndependent,
                                     WorkloadKind::kCorrelated,
                                     WorkloadKind::kAnticorrelated,
                                     WorkloadKind::kForestCoverLike,
                                     WorkloadKind::kRecipesLike),
                     testing::Values(Dim{2}, Dim{3}, Dim{5})),
    [](const testing::TestParamInfo<std::tuple<WorkloadKind, Dim>>& info) {
      return WorkloadKindName(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SkylineTest, SfsUsesFewerChecksThanBnlOnAnticorrelated) {
  const DataSet data = GenerateAnticorrelated(5000, 3, 7);
  const auto bnl = SkylineBNL(data);
  const auto sfs = SkylineSFS(data);
  EXPECT_EQ(bnl.rows, sfs.rows);
  // The presort lets SFS discard dominated points with fewer comparisons.
  EXPECT_LT(sfs.dominance_checks, bnl.dominance_checks);
}

TEST(SkylineTest, BbsIsIoFrugal) {
  const DataSet data = GenerateCorrelated(20000, 3, 7);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  tree->ResetIoStats();
  auto bbs = SkylineBBS(data, *tree);
  ASSERT_TRUE(bbs.ok());
  // BBS must not read the whole index: on correlated data the skyline
  // region touches a small fraction of the pages.
  EXPECT_LT(tree->io_stats().page_reads, tree->PageCount() / 2);
}

TEST(SkylineTest, BbsRejectsMismatchedTree) {
  const DataSet data = GenerateIndependent(100, 2, 3);
  const DataSet other = GenerateIndependent(50, 2, 3);
  auto tree = RTree::BulkLoad(other);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(SkylineBBS(data, *tree).status().IsInvalidArgument());
}

}  // namespace
}  // namespace skydiver
