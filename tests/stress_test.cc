// Randomized stress tests: long random operation sequences checked against
// reference implementations and structural invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/dominance.h"
#include "datagen/generators.h"
#include "parallel/thread_pool.h"
#include "rtree/disk_rtree.h"
#include "rtree/rtree.h"
#include "skyline/external.h"
#include "skyline/skyline.h"
#include "stream/streaming.h"

namespace skydiver {
namespace {

// --------------------------------------------------------------------------
// R-tree: interleaved inserts and queries vs a linear-scan reference.
// --------------------------------------------------------------------------

class RTreeStressTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RTreeStressTest, RandomInsertQuerySequence) {
  Rng rng(GetParam());
  const Dim d = 2 + static_cast<Dim>(rng.NextBounded(3));
  // Small pages force frequent splits — the stressful configuration.
  RTreeConfig config;
  config.page_size = 512;
  RTree tree(d, config);
  DataSet reference(d);

  std::vector<Coord> point(d), lo(d), hi(d);
  for (int op = 0; op < 1500; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.70 || reference.empty()) {
      // Insert (clustered values produce overlap-heavy MBRs).
      for (Dim i = 0; i < d; ++i) {
        point[i] = std::floor(rng.NextDouble() * 16.0) / 16.0;
      }
      tree.Insert(point, reference.size());
      reference.Append(std::span<const Coord>(point.data(), d));
    } else if (dice < 0.85) {
      // Range count vs scan.
      for (Dim i = 0; i < d; ++i) {
        const double a = rng.NextDouble(), b = rng.NextDouble();
        lo[i] = std::min(a, b);
        hi[i] = std::max(a, b);
      }
      uint64_t expected = 0;
      for (RowId r = 0; r < reference.size(); ++r) {
        bool inside = true;
        for (Dim i = 0; i < d; ++i) {
          if (reference.at(r, i) < lo[i] || reference.at(r, i) > hi[i]) {
            inside = false;
            break;
          }
        }
        expected += inside;
      }
      ASSERT_EQ(tree.RangeCount(lo, hi), expected) << "op " << op;
    } else if (dice < 0.95) {
      // Dominated count vs scan.
      const auto probe = static_cast<RowId>(rng.NextBounded(reference.size()));
      uint64_t expected = 0;
      for (RowId r = 0; r < reference.size(); ++r) {
        expected += (r != probe) &&
                    Dominates(reference.row(probe), reference.row(r));
      }
      ASSERT_EQ(tree.DominatedCount(reference.row(probe)), expected) << "op " << op;
    } else {
      // kNN head vs scan.
      for (Dim i = 0; i < d; ++i) point[i] = rng.NextDouble();
      const auto knn = tree.NearestNeighbors(point, 3);
      double best = std::numeric_limits<double>::infinity();
      for (RowId r = 0; r < reference.size(); ++r) {
        double s = 0;
        for (Dim i = 0; i < d; ++i) {
          const double diff = reference.at(r, i) - point[i];
          s += diff * diff;
        }
        best = std::min(best, std::sqrt(s));
      }
      ASSERT_FALSE(knn.empty());
      ASSERT_NEAR(knn[0].distance, best, 1e-12) << "op " << op;
    }
    if (op % 250 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << op << ": " << tree.CheckInvariants().ToString();
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeStressTest, testing::Range<uint64_t>(500, 506));

// --------------------------------------------------------------------------
// Skyline: all five algorithms agree on adversarial inputs.
// --------------------------------------------------------------------------

class SkylineAdversarialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SkylineAdversarialTest, AllAlgorithmsAgreeOnTieHeavyData) {
  Rng rng(GetParam());
  const Dim d = 2 + static_cast<Dim>(rng.NextBounded(3));
  const int levels = 1 + static_cast<int>(rng.NextBounded(4));  // few distinct values
  DataSet data(d);
  const int n = 800;
  for (int r = 0; r < n; ++r) {
    std::vector<Coord> p(d);
    for (Dim i = 0; i < d; ++i) {
      p[i] = static_cast<Coord>(rng.NextBounded(static_cast<uint64_t>(levels)));
    }
    data.Append(std::span<const Coord>(p.data(), d));
  }
  const auto sfs = SkylineSFS(data).rows;
  EXPECT_EQ(SkylineBNL(data).rows, sfs);
  EXPECT_EQ(SkylineDC(data, 32).rows, sfs);
  EXPECT_EQ(SkylineExternal(data, 7).value().rows, sfs);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(SkylineBBS(data, *tree)->rows, sfs);
  EXPECT_TRUE(IsSkyline(data, sfs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylineAdversarialTest,
                         testing::Range<uint64_t>(600, 608));

// --------------------------------------------------------------------------
// Disk path: one DiskRTree, eight threads of mixed BBS and range-count
// traffic against a deliberately tiny frame cache (constant eviction churn)
// with async prefetch racing the demand reads. Every thread checks its
// results against single-threaded references; under TSan this exercises the
// PageCache's pin/evict/in-flight protocol end to end. (This test runs in
// the TSan CI lane — see .github/workflows/ci.yml.)
// --------------------------------------------------------------------------

TEST(DiskStressTest, EightThreadsOfMixedBbsAndRangeCount) {
  const DataSet data =
      GenerateWorkload(WorkloadKind::kAnticorrelated, 6000, 3, 311).value();
  const auto tree = RTree::BulkLoad(data).value();
  const std::string path = testing::TempDir() + "/disk_stress.pages";
  ASSERT_TRUE(DiskRTree::Write(tree, path).ok());

  ThreadPool prefetch_pool(4);
  DiskTreeOptions options;
  options.cache_fraction = 0.02;  // tiny: eviction races are the point
  options.prefetch_pool = &prefetch_pool;
  auto disk = DiskRTree::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  const std::vector<RowId> want_sky = SkylineSFS(data).rows;
  const std::vector<Coord> lo{0.2, 0.2, 0.2}, hi{0.7, 0.7, 0.7};
  const uint64_t want_count = tree.RangeCount(lo, hi);

  std::atomic<int> failures{0};
  // Raw threads on purpose: this exercises external query traffic against
  // the shared tree, not pool-dispatched work.
  std::vector<std::thread> threads;  // skylint:allow(determinism)
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        const auto sky = SkylineBBS(data, *disk);
        if (!sky.ok() || sky->rows != want_sky) failures.fetch_add(1);
      } else {
        for (int i = 0; i < 8; ++i) {
          const auto count = disk->RangeCount(lo, hi);
          if (!count.ok() || count.value() != want_count) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Streaming: random interleavings of duplicate-heavy points stay
// consistent with batch computation at every checkpoint.
// --------------------------------------------------------------------------

class StreamingStressTest : public testing::TestWithParam<uint64_t> {};

TEST_P(StreamingStressTest, CheckpointedConsistency) {
  Rng rng(GetParam());
  const Dim d = 2;
  StreamingSkyDiver stream(d, 16, GetParam(), 4096);
  DataSet reference(d);
  for (int i = 0; i < 600; ++i) {
    // Coarse grid => duplicates and massive demotion churn.
    const std::vector<Coord> p{std::floor(rng.NextDouble() * 8.0),
                               std::floor(rng.NextDouble() * 8.0)};
    ASSERT_TRUE(stream.Insert(std::span<const Coord>(p.data(), d)).ok());
    reference.Append(std::span<const Coord>(p.data(), d));
    if (i % 97 == 0) {
      ASSERT_EQ(stream.SkylineRows(), SkylineSFS(reference).rows) << "insert " << i;
    }
  }
  EXPECT_EQ(stream.SkylineRows(), SkylineSFS(reference).rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingStressTest, testing::Range<uint64_t>(700, 706));

}  // namespace
}  // namespace skydiver
