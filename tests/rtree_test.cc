// Unit tests for src/rtree: MBR geometry & dominance, buffer pool LRU
// semantics, R*-tree construction (bulk + dynamic), queries, invariants.

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/dominance.h"
#include "datagen/generators.h"
#include "rtree/buffer_pool.h"
#include "rtree/mbr.h"
#include "rtree/rtree.h"

namespace skydiver {
namespace {

// --------------------------------------------------------------------------
// Mbr
// --------------------------------------------------------------------------

TEST(MbrTest, ExpandAndMetrics) {
  Mbr m(2);
  EXPECT_TRUE(m.IsEmpty());
  const std::vector<Coord> a{1.0, 2.0}, b{3.0, 1.0};
  m.Expand(a);
  EXPECT_FALSE(m.IsEmpty());
  m.Expand(b);
  EXPECT_DOUBLE_EQ(m.lo(0), 1.0);
  EXPECT_DOUBLE_EQ(m.lo(1), 1.0);
  EXPECT_DOUBLE_EQ(m.hi(0), 3.0);
  EXPECT_DOUBLE_EQ(m.hi(1), 2.0);
  EXPECT_DOUBLE_EQ(m.Area(), 2.0);
  EXPECT_DOUBLE_EQ(m.Margin(), 3.0);
  EXPECT_DOUBLE_EQ(m.MinDistL1(), 2.0);
}

TEST(MbrTest, OverlapContainIntersect) {
  Mbr a = Mbr::OfPoint(std::vector<Coord>{0.0, 0.0});
  a.Expand(std::vector<Coord>{2.0, 2.0});
  Mbr b = Mbr::OfPoint(std::vector<Coord>{1.0, 1.0});
  b.Expand(std::vector<Coord>{3.0, 3.0});
  Mbr c = Mbr::OfPoint(std::vector<Coord>{5.0, 5.0});
  c.Expand(std::vector<Coord>{6.0, 6.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
  EXPECT_FALSE(a.Contains(b));
  Mbr inner = Mbr::OfPoint(std::vector<Coord>{0.5, 0.5});
  EXPECT_TRUE(a.Contains(inner));
  EXPECT_TRUE(a.ContainsPoint(std::vector<Coord>{2.0, 0.0}));  // closed box
  EXPECT_FALSE(a.ContainsPoint(std::vector<Coord>{2.1, 0.0}));
  EXPECT_DOUBLE_EQ(a.Enlargement(c), 36.0 - 4.0);
}

TEST(MbrTest, DominanceTrichotomy) {
  // Box [2,3] x [2,3].
  Mbr box = Mbr::OfPoint(std::vector<Coord>{2.0, 2.0});
  box.Expand(std::vector<Coord>{3.0, 3.0});
  const std::vector<Coord> full{1.0, 1.0};     // dominates lower-left
  const std::vector<Coord> partial{1.0, 2.5};  // dominates upper-right only
  const std::vector<Coord> none{4.0, 4.0};     // dominates nothing
  EXPECT_TRUE(box.FullyDominatedBy(full));
  EXPECT_TRUE(box.UpperCornerDominatedBy(full));
  EXPECT_FALSE(box.FullyDominatedBy(partial));
  EXPECT_TRUE(box.UpperCornerDominatedBy(partial));
  EXPECT_FALSE(box.FullyDominatedBy(none));
  EXPECT_FALSE(box.UpperCornerDominatedBy(none));
}

TEST(MbrTest, FullDominanceImpliesEveryPointDominated) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    Mbr box(3);
    std::vector<Coord> p1(3), p2(3), s(3);
    for (int i = 0; i < 3; ++i) {
      p1[i] = rng.NextDouble();
      p2[i] = rng.NextDouble();
      s[i] = rng.NextDouble() - 0.5;
    }
    box.Expand(p1);
    box.Expand(p2);
    if (box.FullyDominatedBy(s)) {
      EXPECT_TRUE(Dominates(s, p1));
      EXPECT_TRUE(Dominates(s, p2));
    }
    if (!box.UpperCornerDominatedBy(s)) {
      EXPECT_FALSE(Dominates(s, p1));
      EXPECT_FALSE(Dominates(s, p2));
    }
  }
}

// --------------------------------------------------------------------------
// BufferPool
// --------------------------------------------------------------------------

TEST(BufferPoolTest, HitsAndFaults) {
  BufferPool pool(2);
  EXPECT_FALSE(pool.Access(1));  // miss
  EXPECT_FALSE(pool.Access(2));  // miss
  EXPECT_TRUE(pool.Access(1));   // hit
  EXPECT_EQ(pool.stats().page_reads, 3u);
  EXPECT_EQ(pool.stats().page_faults, 2u);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(2);
  pool.Access(1);
  pool.Access(2);
  pool.Access(1);        // 1 is now most recent
  pool.Access(3);        // evicts 2
  EXPECT_TRUE(pool.Access(1));
  EXPECT_FALSE(pool.Access(2));  // was evicted
}

TEST(BufferPoolTest, CapacityShrinkEvicts) {
  BufferPool pool(4);
  for (PageId p = 0; p < 4; ++p) pool.Access(p);
  pool.SetCapacity(1);
  EXPECT_EQ(pool.cached_pages(), 1u);
  EXPECT_TRUE(pool.Access(3));  // most recent page survives
}

TEST(BufferPoolTest, ZeroCapacityClampsToOne) {
  BufferPool pool(0);
  EXPECT_EQ(pool.capacity(), 1u);
}

TEST(BufferPoolTest, ClearKeepsStats) {
  BufferPool pool(2);
  pool.Access(7);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  EXPECT_EQ(pool.stats().page_faults, 1u);
  EXPECT_FALSE(pool.Access(7));  // faults again after clear
}

// --------------------------------------------------------------------------
// RTree
// --------------------------------------------------------------------------

class RTreeLoadTest : public testing::TestWithParam<bool> {
 protected:
  // Builds via bulk load (param=false) or dynamic insertion (param=true).
  Result<RTree> Build(const DataSet& data, RTreeConfig config = {}) {
    return GetParam() ? RTree::InsertLoad(data, config) : RTree::BulkLoad(data, config);
  }
};

TEST_P(RTreeLoadTest, InvariantsHold) {
  for (Dim d : {2u, 4u, 6u}) {
    const DataSet data = GenerateIndependent(3000, d, 17);
    auto tree = Build(data);
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ(tree->size(), 3000u);
    EXPECT_TRUE(tree->CheckInvariants().ok()) << tree->CheckInvariants().ToString();
    EXPECT_GE(tree->height(), 2u);
  }
}

TEST_P(RTreeLoadTest, RangeCountMatchesLinearScan) {
  const DataSet data = GenerateClustered(4000, 3, 23);
  auto tree = Build(data);
  ASSERT_TRUE(tree.ok());
  Rng rng(99);
  for (int q = 0; q < 50; ++q) {
    std::vector<Coord> lo(3), hi(3);
    for (int i = 0; i < 3; ++i) {
      const double a = rng.NextDouble(), b = rng.NextDouble();
      lo[static_cast<size_t>(i)] = std::min(a, b);
      hi[static_cast<size_t>(i)] = std::max(a, b);
    }
    uint64_t expected = 0;
    for (RowId r = 0; r < data.size(); ++r) {
      bool inside = true;
      for (Dim i = 0; i < 3; ++i) {
        if (data.at(r, i) < lo[i] || data.at(r, i) > hi[i]) {
          inside = false;
          break;
        }
      }
      expected += inside;
    }
    EXPECT_EQ(tree->RangeCount(lo, hi), expected) << "query " << q;
  }
}

TEST_P(RTreeLoadTest, RangeSearchReturnsExactRows) {
  const DataSet data = GenerateIndependent(2000, 2, 31);
  auto tree = Build(data);
  ASSERT_TRUE(tree.ok());
  const std::vector<Coord> lo{0.2, 0.2}, hi{0.5, 0.6};
  std::set<RowId> expected;
  for (RowId r = 0; r < data.size(); ++r) {
    if (data.at(r, 0) >= 0.2 && data.at(r, 0) <= 0.5 && data.at(r, 1) >= 0.2 &&
        data.at(r, 1) <= 0.6) {
      expected.insert(r);
    }
  }
  const auto rows = tree->RangeSearch(lo, hi);
  EXPECT_EQ(std::set<RowId>(rows.begin(), rows.end()), expected);
  EXPECT_EQ(tree->RangeCount(lo, hi), expected.size());
}

TEST_P(RTreeLoadTest, DominatedCountMatchesDefinition) {
  const DataSet data = GenerateIndependent(3000, 3, 37);
  auto tree = Build(data);
  ASSERT_TRUE(tree.ok());
  for (RowId probe : {0u, 10u, 500u, 2999u}) {
    const auto p = data.row(probe);
    uint64_t expected = 0;
    for (RowId r = 0; r < data.size(); ++r) {
      expected += (r != probe) && Dominates(p, data.row(r));
    }
    EXPECT_EQ(tree->DominatedCount(p), expected) << "probe " << probe;
  }
}

TEST_P(RTreeLoadTest, CommonDominatedCountMatchesDefinition) {
  const DataSet data = GenerateIndependent(2000, 3, 41);
  auto tree = Build(data);
  ASSERT_TRUE(tree.ok());
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = static_cast<RowId>(rng.NextBounded(data.size()));
    const auto b = static_cast<RowId>(rng.NextBounded(data.size()));
    const auto p = data.row(a);
    const auto q = data.row(b);
    uint64_t expected = 0;
    for (RowId r = 0; r < data.size(); ++r) {
      expected += Dominates(p, data.row(r)) && Dominates(q, data.row(r));
    }
    EXPECT_EQ(tree->CommonDominatedCount(p, q), expected)
        << "pair (" << a << ", " << b << ")";
  }
}

TEST_P(RTreeLoadTest, DuplicatePointsAreCountedCorrectly) {
  DataSet data(2);
  data.Append({0.5, 0.5});
  data.Append({0.5, 0.5});  // duplicate
  data.Append({0.7, 0.7});
  data.Append({0.3, 0.8});
  auto tree = Build(data);
  ASSERT_TRUE(tree.ok());
  // The duplicate at (0.5,0.5) dominates only (0.7,0.7), not its own copy.
  EXPECT_EQ(tree->DominatedCount(data.row(0)), 1u);
  EXPECT_EQ(tree->CommonDominatedCount(data.row(0), data.row(1)), 1u);
  EXPECT_EQ(tree->CommonDominatedCount(data.row(0), data.row(3)), 0u);
}

INSTANTIATE_TEST_SUITE_P(BulkAndDynamic, RTreeLoadTest, testing::Values(false, true),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "DynamicInsert" : "BulkLoad";
                         });

TEST(RTreeTest, EmptyDatasetRejected) {
  DataSet data(2);
  EXPECT_TRUE(RTree::BulkLoad(data).status().IsInvalidArgument());
  EXPECT_TRUE(RTree::InsertLoad(data).status().IsInvalidArgument());
}

TEST(RTreeTest, CapacitiesFollowPageSize) {
  RTreeConfig config;
  config.page_size = 4096;
  RTree tree(4, config);
  // Leaf entry: 4*8+4 = 36 bytes; internal: 8*8+4+8 = 76 bytes; 16-byte header.
  EXPECT_EQ(tree.LeafCapacity(), (4096u - 16u) / 36u);
  EXPECT_EQ(tree.InternalCapacity(), (4096u - 16u) / 76u);
}

TEST(RTreeTest, SmallerPagesMakeDeeperTrees) {
  const DataSet data = GenerateIndependent(5000, 2, 53);
  RTreeConfig small;
  small.page_size = 256;
  auto t_small = RTree::BulkLoad(data, small);
  auto t_big = RTree::BulkLoad(data);
  ASSERT_TRUE(t_small.ok());
  ASSERT_TRUE(t_big.ok());
  EXPECT_GT(t_small->height(), t_big->height());
  EXPECT_GT(t_small->PageCount(), t_big->PageCount());
  EXPECT_TRUE(t_small->CheckInvariants().ok());
}

TEST(RTreeTest, BufferPoolSizedToCacheFraction) {
  const DataSet data = GenerateIndependent(20000, 2, 61);
  RTreeConfig config;
  config.cache_fraction = 0.2;
  auto tree = RTree::BulkLoad(data, config);
  ASSERT_TRUE(tree.ok());
  const auto expected = static_cast<size_t>(
      std::ceil(0.2 * static_cast<double>(tree->PageCount())));
  EXPECT_EQ(tree->pool().capacity(), std::max<size_t>(1, expected));
}

TEST(RTreeTest, RepeatedQueriesHitCache) {
  const DataSet data = GenerateIndependent(20000, 2, 67);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  const std::vector<Coord> lo{0.4, 0.4}, hi{0.42, 0.42};
  tree->ResetIoStats();
  (void)tree->RangeCount(lo, hi);
  const uint64_t first_faults = tree->io_stats().page_faults;
  (void)tree->RangeCount(lo, hi);
  const uint64_t second_faults = tree->io_stats().page_faults - first_faults;
  EXPECT_GT(first_faults, 0u);
  EXPECT_EQ(second_faults, 0u);  // everything needed is now resident
}

TEST(RTreeTest, AggregateShortcutBeatsFullScanIo) {
  const DataSet data = GenerateIndependent(20000, 2, 71);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  // A query covering (almost) everything should be answered near the root
  // thanks to the aggregate counts: few page reads.
  const std::vector<Coord> lo{-1.0, -1.0}, hi{2.0, 2.0};
  tree->ResetIoStats();
  EXPECT_EQ(tree->RangeCount(lo, hi), 20000u);
  EXPECT_LE(tree->io_stats().page_reads, 2u);
}

}  // namespace
}  // namespace skydiver
