// Unit tests for the SkyDiver framework façade.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/gamma.h"
#include "datagen/generators.h"
#include "diversify/evaluate.h"
#include "rtree/rtree.h"
#include "skydiver/skydiver.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

TEST(SkyDiverTest, ValidatesConfig) {
  const DataSet data = GenerateIndependent(200, 3, 1);
  SkyDiverConfig config;
  config.k = 0;
  EXPECT_TRUE(SkyDiver::Run(data, config).status().IsInvalidArgument());
  config.k = 5;
  config.signature_size = 0;
  EXPECT_TRUE(SkyDiver::Run(data, config).status().IsInvalidArgument());
  config.signature_size = 50;
  config.siggen = SigGenMode::kIndexBased;
  EXPECT_TRUE(SkyDiver::Run(data, config).status().IsInvalidArgument());  // no tree
  const DataSet empty(3);
  EXPECT_TRUE(SkyDiver::Run(empty, SkyDiverConfig{}).status().IsInvalidArgument());
}

TEST(SkyDiverTest, IndexFreePipelineProducesKDiverseSkylinePoints) {
  const DataSet data = GenerateIndependent(3000, 4, 5);
  SkyDiverConfig config;
  config.k = 10;
  auto report = SkyDiver::Run(data, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(IsSkyline(data, report->skyline));
  EXPECT_EQ(report->selected.size(), 10u);
  EXPECT_EQ(report->selected_rows.size(), 10u);
  // Selected rows are distinct skyline members.
  std::set<RowId> sky(report->skyline.begin(), report->skyline.end());
  std::set<RowId> sel(report->selected_rows.begin(), report->selected_rows.end());
  EXPECT_EQ(sel.size(), 10u);
  for (RowId r : sel) EXPECT_TRUE(sky.count(r));
  // IF charges sequential-scan faults.
  EXPECT_GT(report->fingerprint_phase.io.page_faults, 0u);
  EXPECT_GT(report->signature_memory_bytes, 0u);
  EXPECT_EQ(report->lsh_memory_bytes, 0u);  // MH mode
}

TEST(SkyDiverTest, IndexBasedPipelineUsesTree) {
  const DataSet data = GenerateForestCoverLike(5000, 4, 7);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  SkyDiverConfig config;
  config.k = 10;
  auto report = SkyDiver::Run(data, config, &*tree);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(IsSkyline(data, report->skyline));
  EXPECT_EQ(report->selected_rows.size(), 10u);
}

TEST(SkyDiverTest, LshModeReportsMemory) {
  const DataSet data = GenerateIndependent(2000, 4, 9);
  SkyDiverConfig config;
  config.k = 5;
  config.select = SelectMode::kLsh;
  config.lsh_threshold = 0.2;
  config.lsh_buckets = 20;
  auto report = SkyDiver::Run(data, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->selected.size(), 5u);
  EXPECT_GT(report->lsh_memory_bytes, 0u);
  // The LSH vectors are (much) smaller than the signature matrix.
  EXPECT_LT(report->lsh_memory_bytes, report->signature_memory_bytes);
}

TEST(SkyDiverTest, PrecomputedSkylineIsHonored) {
  const DataSet data = GenerateIndependent(1500, 3, 11);
  const auto skyline = SkylineSFS(data).rows;
  SkyDiverConfig config;
  config.k = std::min<size_t>(5, skyline.size());
  auto report = SkyDiver::Run(data, config, nullptr, &skyline);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->skyline, skyline);
  EXPECT_EQ(report->skyline_phase.io.page_reads, 0u);  // skipped
}

TEST(SkyDiverTest, KLargerThanSkylineIsRejected) {
  const DataSet data = GenerateCorrelated(500, 2, 13);  // tiny skyline
  SkyDiverConfig config;
  config.k = 400;
  EXPECT_TRUE(SkyDiver::Run(data, config).status().IsInvalidArgument());
}

TEST(SkyDiverTest, DeterministicAcrossRuns) {
  const DataSet data = GenerateIndependent(2000, 4, 15);
  SkyDiverConfig config;
  config.k = 8;
  auto a = SkyDiver::Run(data, config);
  auto b = SkyDiver::Run(data, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->selected_rows, b->selected_rows);
  EXPECT_DOUBLE_EQ(a->objective, b->objective);
}

TEST(SkyDiverTest, SeedChangesHashFamilyNotSkyline) {
  const DataSet data = GenerateIndependent(2000, 4, 15);
  SkyDiverConfig a_config;
  a_config.k = 8;
  a_config.seed = 1;
  SkyDiverConfig b_config = a_config;
  b_config.seed = 2;
  auto a = SkyDiver::Run(data, a_config);
  auto b = SkyDiver::Run(data, b_config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->skyline, b->skyline);  // skyline is seed-independent
}

TEST(SkyDiverTest, RunWithPreferenceMapsMaxDims) {
  // price (min) / quality (max): the skyline under the preference must be
  // the skyline of the negated-quality dataset.
  DataSet hotels(2);
  hotels.Append({50.0, 9.0});   // cheap & great: skyline
  hotels.Append({40.0, 3.0});   // cheapest, poor quality: skyline
  hotels.Append({60.0, 9.5});   // pricier, best quality: skyline
  hotels.Append({70.0, 4.0});   // dominated (0 is cheaper and better)
  hotels.Append({55.0, 8.0});   // dominated by 0
  Preference pref({Pref::kMin, Pref::kMax});
  SkyDiverConfig config;
  config.k = 2;
  auto report = SkyDiver::RunWithPreference(hotels, pref, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->skyline, (std::vector<RowId>{0, 1, 2}));
  EXPECT_EQ(report->selected_rows.size(), 2u);
}

TEST(SkyDiverTest, SelectionQualityBeatsWorstCase) {
  // End-to-end quality: the MH selection's exact diversity should be well
  // above the theoretical floor — sanity that the approximation works.
  const DataSet data = GenerateIndependent(4000, 4, 17);
  const auto skyline = SkylineSFS(data).rows;
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  SkyDiverConfig config;
  config.k = 10;
  auto report = SkyDiver::Run(data, config, nullptr, &skyline);
  ASSERT_TRUE(report.ok());
  const auto quality = EvaluateSelection(gammas, report->selected);
  EXPECT_GT(quality.min_diversity, 0.3);  // paper's Fig. 12 shows ~0.6+ at k=10
}

TEST(SkyDiverTest, CostModelChargesFaults) {
  const DataSet data = GenerateIndependent(3000, 4, 19);
  SkyDiverConfig config;
  config.k = 5;
  auto report = SkyDiver::Run(data, config);
  ASSERT_TRUE(report.ok());
  const double cpu = report->fingerprint_phase.cpu_seconds;
  const double total = report->fingerprint_phase.TotalSeconds(config.cost_model);
  EXPECT_DOUBLE_EQ(total, cpu + 0.008 * static_cast<double>(
                                            report->fingerprint_phase.io.page_faults));
  EXPECT_GE(report->DiversificationSeconds(config.cost_model), total);
}

}  // namespace
}  // namespace skydiver
