// Unit tests for src/common: Status/Result, Rng, primes, BitVector, flags,
// and the I/O cost model.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"

#include "common/bitvector.h"
#include "common/cpu.h"
#include "common/flags.h"
#include "common/io_stats.h"
#include "common/prime.h"
#include "common/rng.h"
#include "common/status.h"

namespace skydiver {
namespace {

// --------------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kNotSupported, StatusCode::kIoError,
        StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(9), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(9), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(StatusTest, CodeNamesRoundTripThroughToString) {
  // Every factory's ToString must lead with exactly the name that
  // StatusCodeToString reports for its code, so log lines and
  // code-dispatching callers agree on spelling.
  const Status statuses[] = {
      Status::InvalidArgument("m"), Status::NotFound("m"),
      Status::OutOfRange("m"),      Status::NotSupported("m"),
      Status::IoError("m"),         Status::Internal("m"),
  };
  std::set<std::string> names;
  for (const Status& s : statuses) {
    const std::string name(StatusCodeToString(s.code()));
    EXPECT_EQ(s.ToString(), name + ": m");
    names.insert(name);
  }
  // Names must also be pairwise distinct or the round-trip is ambiguous.
  EXPECT_EQ(names.size(), std::size(statuses));
}

TEST(ResultTest, MoveOnlyPayload) {
  // Result<T> must work for move-only T end to end: construction,
  // ok-query, moving the payload out, and the error path.
  Result<std::unique_ptr<int>> r(std::make_unique<int>(42));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 42);

  Result<std::unique_ptr<int>> err(Status::Internal("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInternal());

  // A Result moved through a function return keeps its payload.
  auto make = []() -> Result<std::unique_ptr<int>> {
    return Result<std::unique_ptr<int>>(std::make_unique<int>(7));
  };
  Result<std::unique_ptr<int>> chained = make();
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(**chained, 7);
}

// Discarding a Status is a compile-time error under -Werror thanks to
// [[nodiscard]] on the class, and tools/skylint flags it even in
// warnings-off builds — the golden fixture tests/skylint_fixtures/discard
// (exercised by the skylint_selftest ctest entry) pins that behaviour.
// Here we only assert the sanctioned opt-out stays available.
TEST(StatusTest, VoidCastIsTheSanctionedDiscard) {
  (void)Status::Internal("deliberately ignored");
  SUCCEED();
}

TEST(CheckTest, CheckFailureAbortsWithDiagnostic) {
  // SKYDIVER_CHECK must name the failed expression and the message in its
  // abort diagnostic — that is the whole point of using it over assert().
  EXPECT_DEATH(SKYDIVER_CHECK(1 == 2, "math broke"), "1 == 2.*math broke");
  EXPECT_DEATH(SKYDIVER_CHECK_EQ(3, 4), "3 vs. 4");
  EXPECT_DEATH(SKYDIVER_CHECK_OK(Status::IoError("disk gone")),
               "IoError: disk gone");
}

TEST(CheckTest, PassingChecksAreSilent) {
  SKYDIVER_CHECK(true);
  SKYDIVER_CHECK_EQ(2, 2, "equal");
  SKYDIVER_CHECK_LE(1, 2);
  SKYDIVER_CHECK_OK(Status::OK());
  SKYDIVER_DCHECK(true);
  SUCCEED();
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Split();
  EXPECT_NE(a.Next(), child.Next());
}

// --------------------------------------------------------------------------
// Primes
// --------------------------------------------------------------------------

TEST(PrimeTest, SmallValues) {
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_FALSE(IsPrime(4));
  EXPECT_TRUE(IsPrime(5));
  EXPECT_FALSE(IsPrime(1000000));
  EXPECT_TRUE(IsPrime(1000003));
}

TEST(PrimeTest, KnownLargePrimes) {
  EXPECT_TRUE(IsPrime(2147483647ULL));             // 2^31 - 1 (Mersenne)
  EXPECT_TRUE(IsPrime(67280421310721ULL));         // factor of 2^128+1
  EXPECT_FALSE(IsPrime(2147483647ULL * 3));
  // Strong pseudoprime to several small bases; composite.
  EXPECT_FALSE(IsPrime(3215031751ULL));
}

TEST(PrimeTest, NextPrimeIsStrictlyGreaterAndPrime) {
  for (uint64_t n : {0ULL, 1ULL, 2ULL, 10ULL, 1000ULL, 999983ULL, 5000000ULL}) {
    const uint64_t p = NextPrime(n);
    EXPECT_GT(p, n);
    EXPECT_TRUE(IsPrime(p));
    // No prime strictly between n and p.
    for (uint64_t q = n + 1; q < p; ++q) EXPECT_FALSE(IsPrime(q));
  }
}

// --------------------------------------------------------------------------
// BitVector
// --------------------------------------------------------------------------

TEST(BitVectorTest, SetTestClear) {
  BitVector v(130);
  EXPECT_EQ(v.Count(), 0u);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(63));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(129));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.Count(), 4u);
  v.Clear(63);
  EXPECT_FALSE(v.Test(63));
  EXPECT_EQ(v.Count(), 3u);
}

TEST(BitVectorTest, SetAlgebra) {
  BitVector a(100), b(100);
  for (size_t i = 0; i < 100; i += 2) a.Set(i);   // evens: 50 bits
  for (size_t i = 0; i < 100; i += 3) b.Set(i);   // multiples of 3: 34 bits
  // Multiples of 6 in [0,100): 17.
  EXPECT_EQ(a.AndCount(b), 17u);
  EXPECT_EQ(a.OrCount(b), 50u + 34u - 17u);
  EXPECT_EQ(a.HammingDistance(b), (50u - 17u) + (34u - 17u));
  EXPECT_EQ(a.NewCoverage(b), 34u - 17u);
}

TEST(BitVectorTest, UnionInPlace) {
  BitVector a(70), b(70);
  a.Set(1);
  b.Set(68);
  a |= b;
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(68));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitVectorTest, EqualityAndMemory) {
  BitVector a(128), b(128);
  EXPECT_EQ(a, b);
  a.Set(100);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.MemoryBytes(), 2 * sizeof(uint64_t));
}

// --------------------------------------------------------------------------
// IoStats / CostModel
// --------------------------------------------------------------------------

TEST(IoStatsTest, AccumulateAndHitRate) {
  IoStats a{100, 20, 5};
  IoStats b{50, 10, 0};
  a += b;
  EXPECT_EQ(a.page_reads, 150u);
  EXPECT_EQ(a.page_faults, 30u);
  EXPECT_EQ(a.page_writes, 5u);
  EXPECT_DOUBLE_EQ(a.HitRate(), 1.0 - 30.0 / 150.0);
}

TEST(CostModelTest, PaperChargeIsEightMillisPerFault) {
  CostModel model;  // default
  IoStats io{1000, 125, 0};
  EXPECT_DOUBLE_EQ(model.IoSeconds(io), 1.0);  // 125 * 8 ms
  EXPECT_DOUBLE_EQ(model.TotalSeconds(2.5, io), 3.5);
}

// --------------------------------------------------------------------------
// Flags
// --------------------------------------------------------------------------

TEST(FlagsTest, ParsesAllKinds) {
  int64_t n = 5;
  double x = 1.5;
  bool verbose = false;
  std::string name = "def";
  Flags flags;
  flags.AddInt64("n", &n, "count");
  flags.AddDouble("x", &x, "ratio");
  flags.AddBool("verbose", &verbose, "chatty");
  flags.AddString("name", &name, "label");
  const char* argv[] = {"prog", "--n=42", "--x", "2.25", "--verbose", "--name=abc"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.25);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "abc");
}

TEST(FlagsTest, NegatedBool) {
  bool paper = true;
  Flags flags;
  flags.AddBool("paper", &paper, "full scale");
  const char* argv[] = {"prog", "--no-paper"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(paper);
}

TEST(FlagsTest, RejectsUnknownFlag) {
  Flags flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_TRUE(flags.Parse(2, const_cast<char**>(argv)).IsInvalidArgument());
}

TEST(FlagsTest, RejectsMalformedNumbers) {
  int64_t n = 0;
  Flags flags;
  flags.AddInt64("n", &n, "count");
  const char* argv[] = {"prog", "--n=12abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, HelpRequested) {
  Flags flags;
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Usage("prog").find("Usage:"), std::string::npos);
}

// --- cpu.h -----------------------------------------------------------------

TEST(CpuTest, OverrideCanOnlyRestrict) {
  // "scalar"/"none" always force the probe result down to kNone.
  EXPECT_EQ(ApplyIsaOverride(SimdIsa::kAvx2, "scalar"), SimdIsa::kNone);
  EXPECT_EQ(ApplyIsaOverride(SimdIsa::kNeon, "none"), SimdIsa::kNone);
  // "portable" keeps the simd kernel on the word-mask fallback sweep.
  EXPECT_EQ(ApplyIsaOverride(SimdIsa::kAvx2, "portable"), SimdIsa::kPortable);
  // Naming the probed ISA is a no-op; naming a different one restricts to
  // kNone — the override can never ENABLE an ISA the host lacks.
  EXPECT_EQ(ApplyIsaOverride(SimdIsa::kAvx2, "avx2"), SimdIsa::kAvx2);
  EXPECT_EQ(ApplyIsaOverride(SimdIsa::kNone, "avx2"), SimdIsa::kNone);
  EXPECT_EQ(ApplyIsaOverride(SimdIsa::kAvx2, "neon"), SimdIsa::kNone);
  // Unset or unrecognized values leave the probe untouched.
  EXPECT_EQ(ApplyIsaOverride(SimdIsa::kAvx2, nullptr), SimdIsa::kAvx2);
  EXPECT_EQ(ApplyIsaOverride(SimdIsa::kNeon, "sse9"), SimdIsa::kNeon);
}

TEST(CpuTest, IsaNamesRoundTrip) {
  EXPECT_STREQ(ToString(SimdIsa::kNone), "none");
  EXPECT_STREQ(ToString(SimdIsa::kPortable), "portable");
  EXPECT_STREQ(ToString(SimdIsa::kAvx2), "avx2");
  EXPECT_STREQ(ToString(SimdIsa::kNeon), "neon");
}

TEST(CpuTest, DetectIsStableAndConsistentWithAvailability) {
  // The detection is cached; repeated calls must agree, and SimdAvailable
  // is defined as exactly "some sweep implementation will dispatch".
  const SimdIsa isa = DetectSimdIsa();
  EXPECT_EQ(DetectSimdIsa(), isa);
  EXPECT_EQ(SimdAvailable(), isa != SimdIsa::kNone);
}

}  // namespace
}  // namespace skydiver
