// Unit tests for src/parallel: thread pool semantics and the exact
// serial-equivalence of the parallel skyline / signature generation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include <cmath>

#include "core/dominance.h"
#include "core/gamma.h"
#include "datagen/generators.h"
#include "minhash/siggen.h"
#include "parallel/parallel_ops.h"
#include "parallel/thread_pool.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 1);  // queued work drained before join
  // Submission after shutdown must be rejected, not silently queued.
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Shutdown();  // idempotent
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedButUnstartedTasks) {
  // Regression: destroying a pool with tasks still sitting in the queue
  // must run them all (workers drain the queue before exiting), neither
  // hanging nor dropping work.
  std::atomic<int> counter{0};
  std::atomic<bool> release{false};  // outlives the pool (workers read it)
  {
    ThreadPool pool(1);  // single worker => a slow head task queues the rest
    EXPECT_TRUE(pool.Submit([&] {
      while (!release.load()) std::this_thread::yield();
      counter.fetch_add(1);
    }));
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
    }
    release.store(true);
    // Destructor runs here with (up to) 50 queued-but-unstarted tasks.
  }
  EXPECT_EQ(counter.load(), 51);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  const uint64_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, 8, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesDegenerateRanges) {
  ThreadPool pool(2);
  int calls = 0;
  std::mutex mu;
  pool.ParallelFor(0, 4, [&](uint64_t, uint64_t) {
    std::lock_guard<std::mutex> lock(mu);
    ++calls;
  });
  EXPECT_GE(calls, 1);  // single empty chunk is fine
  pool.ParallelFor(2, 100, [&](uint64_t begin, uint64_t end) {
    EXPECT_LE(end - begin, 2u);
  });
}

// Hammers the Submit/harvest protocol from three sides at once — the
// submitting thread, the pool workers, and a concurrent harvester thread —
// so a TSan build sees every pairing the protocol allows (this is the
// hammer test referenced by the protocol comment in parallel/thread_pool.h).
// Dominance counts must be conserved: whatever the concurrent harvester
// drains plus the final post-Wait harvest equals exactly the number of
// tests the tasks performed, with nothing lost or double-counted.
TEST(ThreadPoolTest, ConcurrentHarvestConservesCounts) {
  ThreadPool pool(4);
  (void)pool.HarvestDominanceChecks();  // clear leftovers from earlier tests

  constexpr uint64_t kTasks = 200;
  constexpr uint64_t kTestsPerTask = 64;
  const std::vector<Coord> a{1.0, 2.0};
  const std::vector<Coord> b{2.0, 3.0};

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> drained_total{0};
  std::atomic<uint64_t> drained_tiled{0};
  // A raw thread on purpose: the harvester must run outside the pool it is
  // harvesting.
  std::thread harvester([&] {  // skylint:allow(determinism)
    while (!stop.load(std::memory_order_acquire)) {
      const DominanceHarvest h = pool.HarvestDominanceChecks();
      drained_total.fetch_add(h.total, std::memory_order_relaxed);
      drained_tiled.fetch_add(h.tiled, std::memory_order_relaxed);
    }
  });

  for (uint64_t i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&a, &b] {
      for (uint64_t k = 0; k < kTestsPerTask; ++k) (void)Dominates(a, b);
    }));
  }
  pool.Wait();
  stop.store(true, std::memory_order_release);
  harvester.join();

  const DominanceHarvest rest = pool.HarvestDominanceChecks();
  EXPECT_EQ(drained_total.load() + rest.total, kTasks * kTestsPerTask);
  // Only scalar Dominates() ran; the tiled share must stay zero.
  EXPECT_EQ(drained_tiled.load() + rest.tiled, 0u);
}

class ParallelEquivalenceTest : public testing::TestWithParam<size_t> {};

TEST_P(ParallelEquivalenceTest, SkylineMatchesSerial) {
  ThreadPool pool(GetParam());
  for (WorkloadKind kind : {WorkloadKind::kIndependent, WorkloadKind::kAnticorrelated,
                            WorkloadKind::kForestCoverLike}) {
    const auto data = GenerateWorkload(kind, 4000, 3, 77).value();
    EXPECT_EQ(ParallelSkyline(data, pool).rows, SkylineSFS(data).rows)
        << WorkloadKindName(kind);
  }
}

TEST_P(ParallelEquivalenceTest, SigGenMatchesSerialBitForBit) {
  ThreadPool pool(GetParam());
  const auto data = GenerateIndependent(3000, 4, 79);
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(64, data.size(), 81);
  const auto serial = SigGenIF(data, skyline, family).value();
  const auto parallel = ParallelSigGenIF(data, skyline, family, pool).value();
  ASSERT_EQ(parallel.domination_scores, serial.domination_scores);
  for (size_t j = 0; j < skyline.size(); ++j) {
    for (size_t i = 0; i < family.size(); ++i) {
      ASSERT_EQ(parallel.signatures.at(j, i), serial.signatures.at(j, i))
          << "column " << j << " slot " << i;
    }
  }
  EXPECT_EQ(parallel.io.page_faults, serial.io.page_faults);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelEquivalenceTest,
                         testing::Values<size_t>(1, 2, 4, 7),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ParallelOpsTest, ParallelIbDeterministicAcrossThreadCounts) {
  const auto data = GenerateIndependent(4000, 3, 87);
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(64, data.size(), 89);
  const auto tree = RTree::BulkLoad(data).value();
  ThreadPool pool1(1);
  const auto base = ParallelSigGenIB(data, skyline, family, tree, pool1).value();
  for (size_t threads : {2u, 5u}) {
    ThreadPool pool(threads);
    const auto result = ParallelSigGenIB(data, skyline, family, tree, pool).value();
    ASSERT_EQ(result.domination_scores, base.domination_scores) << threads;
    for (size_t j = 0; j < skyline.size(); ++j) {
      for (size_t i = 0; i < 64; ++i) {
        ASSERT_EQ(result.signatures.at(j, i), base.signatures.at(j, i))
            << threads << " threads, col " << j << " slot " << i;
      }
    }
  }
}

TEST(ParallelOpsTest, ParallelIbScoresMatchSerialAndEstimatesTrackExact) {
  const auto data = GenerateIndependent(4000, 4, 91);
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(256, data.size(), 93);
  const auto tree = RTree::BulkLoad(data).value();
  ThreadPool pool(3);
  const auto parallel = ParallelSigGenIB(data, skyline, family, tree, pool).value();
  const auto serial = SigGenIB(data, skyline, family, tree).value();
  // Exact domination scores are permutation-independent.
  EXPECT_EQ(parallel.domination_scores, serial.domination_scores);
  // Estimates use a different (DFS vs BFS) permutation: statistical
  // agreement only.
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  const size_t m = skyline.size();
  double err_sum = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      err_sum += std::fabs(parallel.signatures.EstimatedSimilarity(a, b) -
                           gammas.JaccardSimilarity(a, b));
      ++pairs;
    }
  }
  EXPECT_LT(err_sum / static_cast<double>(pairs), 0.035);
}

TEST(ParallelOpsTest, ParallelIbValidates) {
  ThreadPool pool(2);
  const auto data = GenerateIndependent(200, 2, 95);
  const auto other = GenerateIndependent(100, 2, 95);
  const auto family = MinHashFamily::Create(8, data.size(), 97);
  const auto tree = RTree::BulkLoad(other).value();
  EXPECT_TRUE(ParallelSigGenIB(data, {0}, family, tree, pool)
                  .status()
                  .IsInvalidArgument());
}

TEST(ParallelOpsTest, SigGenValidatesInputs) {
  ThreadPool pool(2);
  const auto data = GenerateIndependent(100, 2, 83);
  const auto family = MinHashFamily::Create(8, data.size(), 85);
  EXPECT_TRUE(ParallelSigGenIF(data, {}, family, pool).status().IsInvalidArgument());
  EXPECT_TRUE(
      ParallelSigGenIF(data, {999}, family, pool).status().IsInvalidArgument());
}

}  // namespace
}  // namespace skydiver
