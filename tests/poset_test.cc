// Unit tests for src/poset: partial orders, mixed dominance, mixed skyline
// and the coordinate-free diversification pipeline.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/dominance.h"
#include "poset/mixed.h"
#include "poset/partial_order.h"

namespace skydiver {
namespace {

// --------------------------------------------------------------------------
// PartialOrder
// --------------------------------------------------------------------------

TEST(PartialOrderTest, FromEdgesTransitiveClosure) {
  // 0 -> 1 -> 2, plus 0 -> 3.  Closure must include 0 -> 2.
  auto order = PartialOrder::FromEdges(4, {{0, 1}, {1, 2}, {0, 3}});
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(order->Less(0, 1));
  EXPECT_TRUE(order->Less(0, 2));  // transitivity
  EXPECT_TRUE(order->Less(0, 3));
  EXPECT_TRUE(order->Less(1, 2));
  EXPECT_FALSE(order->Less(1, 3));
  EXPECT_TRUE(order->Incomparable(1, 3));
  EXPECT_TRUE(order->Incomparable(2, 3));
  EXPECT_TRUE(order->Leq(2, 2));   // reflexive
  EXPECT_FALSE(order->Less(2, 0)); // antisymmetric
  EXPECT_EQ(order->DownSetSize(0), 3u);
  EXPECT_EQ(order->DownSetSize(2), 0u);
}

TEST(PartialOrderTest, RejectsCyclesAndBadEdges) {
  EXPECT_TRUE(PartialOrder::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PartialOrder::FromEdges(3, {{0, 0}}).status().IsInvalidArgument());
  EXPECT_TRUE(PartialOrder::FromEdges(3, {{0, 7}}).status().IsInvalidArgument());
  EXPECT_TRUE(PartialOrder::FromEdges(0, {}).status().IsInvalidArgument());
}

TEST(PartialOrderTest, ChainIsTotalOrder) {
  const auto chain = PartialOrder::Chain(5);
  for (uint32_t a = 0; a < 5; ++a) {
    for (uint32_t b = 0; b < 5; ++b) {
      EXPECT_EQ(chain.Less(a, b), a < b) << a << " " << b;
      EXPECT_FALSE(chain.Incomparable(a, b));
    }
  }
}

TEST(PartialOrderTest, LevelsStructure) {
  // Levels {1, 2, 2}: id 0 beats 1..4; ids 1,2 beat 3,4; 1 vs 2 and 3 vs 4
  // incomparable.
  const auto levels = PartialOrder::Levels({1, 2, 2});
  EXPECT_TRUE(levels.Less(0, 4));
  EXPECT_TRUE(levels.Less(1, 3));
  EXPECT_TRUE(levels.Less(2, 4));
  EXPECT_TRUE(levels.Incomparable(1, 2));
  EXPECT_TRUE(levels.Incomparable(3, 4));
}

TEST(PartialOrderTest, AntichainAllIncomparable) {
  const auto flat = PartialOrder::Antichain(4);
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_TRUE(flat.Incomparable(a, b));
      }
    }
  }
}

TEST(PartialOrderTest, PartialOrderAxiomsOnRandomDags) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 8;
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    // Random DAG: only forward edges in a fixed vertex order.
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        if (rng.NextDouble() < 0.3) edges.emplace_back(a, b);
      }
    }
    const auto order = PartialOrder::FromEdges(n, edges).value();
    for (uint32_t a = 0; a < n; ++a) {
      EXPECT_FALSE(order.Less(a, a));
      for (uint32_t b = 0; b < n; ++b) {
        EXPECT_FALSE(order.Less(a, b) && order.Less(b, a));
        for (uint32_t c = 0; c < n; ++c) {
          if (order.Less(a, b) && order.Less(b, c)) {
            EXPECT_TRUE(order.Less(a, c));
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// MixedSchema / MixedDominates
// --------------------------------------------------------------------------

TEST(MixedSchemaTest, ValidateCatchesBadCategoryIds) {
  const auto tiers = PartialOrder::Chain(3);
  MixedSchema schema(2);
  ASSERT_TRUE(schema.SetCategorical(1, &tiers).ok());
  EXPECT_TRUE(schema.SetCategorical(5, &tiers).IsInvalidArgument());
  EXPECT_TRUE(schema.SetCategorical(0, nullptr).IsInvalidArgument());

  DataSet ok_data(2);
  ok_data.Append({1.0, 2.0});
  EXPECT_TRUE(schema.Validate(ok_data).ok());

  DataSet bad_id(2);
  bad_id.Append({1.0, 3.0});  // category 3 out of range
  EXPECT_TRUE(schema.Validate(bad_id).IsInvalidArgument());

  DataSet non_integral(2);
  non_integral.Append({1.0, 0.5});
  EXPECT_TRUE(schema.Validate(non_integral).IsInvalidArgument());
}

TEST(MixedDominatesTest, NumericPlusChain) {
  const auto tiers = PartialOrder::Chain(3);  // 0 best
  MixedSchema schema(2);
  ASSERT_TRUE(schema.SetCategorical(1, &tiers).ok());
  const std::vector<Coord> cheap_good{10.0, 0.0};
  const std::vector<Coord> cheap_bad{10.0, 2.0};
  const std::vector<Coord> pricey_good{20.0, 0.0};
  EXPECT_TRUE(MixedDominates(cheap_good, cheap_bad, schema));
  EXPECT_TRUE(MixedDominates(cheap_good, pricey_good, schema));
  EXPECT_FALSE(MixedDominates(cheap_bad, pricey_good, schema));  // tier worse
  EXPECT_FALSE(MixedDominates(cheap_good, cheap_good, schema));  // irreflexive
}

TEST(MixedDominatesTest, IncomparableCategoriesBlockDominance) {
  const auto flat = PartialOrder::Antichain(3);
  MixedSchema schema(2);
  ASSERT_TRUE(schema.SetCategorical(1, &flat).ok());
  const std::vector<Coord> a{1.0, 0.0};
  const std::vector<Coord> b{5.0, 1.0};
  // a is cheaper, but categories 0 and 1 are incomparable -> no dominance.
  EXPECT_FALSE(MixedDominates(a, b, schema));
}

TEST(MixedDominatesTest, AllNumericMatchesPlainDominance) {
  MixedSchema schema(3);
  Rng rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Coord> p(3), q(3);
    for (int i = 0; i < 3; ++i) {
      p[static_cast<size_t>(i)] = std::floor(rng.NextDouble() * 4);
      q[static_cast<size_t>(i)] = std::floor(rng.NextDouble() * 4);
    }
    EXPECT_EQ(MixedDominates(p, q, schema), Dominates(p, q));
  }
}

// --------------------------------------------------------------------------
// MixedSkyline / DiversifyMixed
// --------------------------------------------------------------------------

TEST(MixedSkylineTest, SmallCatalog) {
  // (price, tier) with tiers: 0 premium ≺ 1 standard ≺ 2 economy.
  const auto tiers = PartialOrder::Chain(3);
  MixedSchema schema(2);
  ASSERT_TRUE(schema.SetCategorical(1, &tiers).ok());
  DataSet d(2);
  d.Append({100.0, 0.0});  // 0: cheap premium   -> skyline
  d.Append({50.0, 2.0});   // 1: cheapest economy -> skyline
  d.Append({120.0, 0.0});  // 2: dominated by 0
  d.Append({60.0, 2.0});   // 3: dominated by 1
  d.Append({80.0, 1.0});   // 4: skyline (cheaper than 0, better tier than 1)
  auto skyline = MixedSkyline(d, schema);
  ASSERT_TRUE(skyline.ok());
  EXPECT_EQ(*skyline, (std::vector<RowId>{0, 1, 4}));
}

TEST(MixedSkylineTest, MatchesBruteForceOnRandomMixedData) {
  const auto levels = PartialOrder::Levels({1, 3, 2});
  MixedSchema schema(3);
  ASSERT_TRUE(schema.SetCategorical(2, &levels).ok());
  Rng rng(47);
  DataSet d(3);
  for (int r = 0; r < 300; ++r) {
    d.Append({rng.NextDouble(), rng.NextDouble(),
              static_cast<Coord>(rng.NextBounded(6))});
  }
  const auto skyline = MixedSkyline(d, schema).value();
  // Brute force: a row is skyline iff nothing dominates it.
  std::vector<RowId> expected;
  for (RowId r = 0; r < d.size(); ++r) {
    bool dominated = false;
    for (RowId q = 0; q < d.size(); ++q) {
      if (q != r && MixedDominates(d.row(q), d.row(r), schema)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) expected.push_back(r);
  }
  EXPECT_EQ(skyline, expected);
}

TEST(DiversifyMixedTest, EndToEnd) {
  const auto tiers = PartialOrder::Levels({2, 3, 2});
  MixedSchema schema(3);
  ASSERT_TRUE(schema.SetCategorical(2, &tiers).ok());
  Rng rng(53);
  DataSet d(3);
  for (int r = 0; r < 2000; ++r) {
    d.Append({rng.NextDouble(), rng.NextDouble(),
              static_cast<Coord>(rng.NextBounded(7))});
  }
  auto result = DiversifyMixed(d, schema, 5, 100, 55);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->selected_rows.size(), 5u);
  // Selected rows must be skyline members.
  for (RowId r : result->selected_rows) {
    EXPECT_TRUE(std::find(result->skyline.begin(), result->skyline.end(), r) !=
                result->skyline.end());
  }
  EXPECT_GT(result->objective, 0.0);
}

TEST(DiversifyMixedTest, RejectsOversizedK) {
  MixedSchema schema(2);
  DataSet d(2);
  d.Append({1.0, 1.0});
  EXPECT_TRUE(DiversifyMixed(d, schema, 5, 10, 1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace skydiver
