// Unit tests for src/lsh: banding parameter selection, bit-vector
// construction, Hamming-distance semantics, memory accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "core/gamma.h"
#include "datagen/generators.h"
#include "lsh/lsh.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

TEST(LshParamsTest, ThresholdFormula) {
  LshParams p;
  p.zones = 20;
  p.rows_per_zone = 5;
  EXPECT_NEAR(p.Threshold(), std::pow(1.0 / 20.0, 1.0 / 5.0), 1e-12);
}

TEST(LshParamsTest, CollisionProbabilityIsSigmoid) {
  LshParams p;
  p.zones = 20;
  p.rows_per_zone = 5;
  EXPECT_NEAR(p.CollisionProbability(0.0), 0.0, 1e-12);
  EXPECT_NEAR(p.CollisionProbability(1.0), 1.0, 1e-12);
  // Monotone increasing.
  double prev = 0.0;
  for (double s = 0.05; s < 1.0; s += 0.05) {
    const double c = p.CollisionProbability(s);
    EXPECT_GE(c, prev);
    prev = c;
  }
  // Near the threshold the collision probability is mid-range.
  const double at_threshold = p.CollisionProbability(p.Threshold());
  EXPECT_GT(at_threshold, 0.3);
  EXPECT_LT(at_threshold, 0.9);
}

TEST(ChooseZonesTest, ProductAlwaysEqualsSignatureSize) {
  for (size_t t : {100u, 64u, 20u, 50u}) {
    for (double xi : {0.1, 0.2, 0.3, 0.4, 0.8}) {
      auto p = ChooseZones(t, xi);
      ASSERT_TRUE(p.ok()) << t << " " << xi;
      EXPECT_EQ(p->zones * p->rows_per_zone, t);
    }
  }
}

TEST(ChooseZonesTest, LowerThresholdMeansMoreZones) {
  const auto strict = ChooseZones(100, 0.1).value();
  const auto loose = ChooseZones(100, 0.8).value();
  // Lower ξ -> catch lower-similarity pairs -> more zones, fewer rows each.
  EXPECT_GT(strict.zones, loose.zones);
}

TEST(ChooseZonesTest, RejectsBadInputs) {
  EXPECT_TRUE(ChooseZones(1, 0.2).status().IsInvalidArgument());
  EXPECT_TRUE(ChooseZones(100, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(ChooseZones(100, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(ChooseZones(100, 0.2, 1).status().IsInvalidArgument());
}

TEST(LshIndexTest, BitVectorStructure) {
  // Build signatures for 3 columns by hand.
  SignatureMatrix sig(4, 3);
  for (size_t i = 0; i < 4; ++i) {
    sig.UpdateMin(0, i, 100 + i);
    sig.UpdateMin(1, i, 100 + i);  // identical to column 0
    sig.UpdateMin(2, i, 900 + i);  // different
  }
  LshParams params;
  params.zones = 2;
  params.rows_per_zone = 2;
  params.buckets_per_zone = 8;
  auto index = LshIndex::Build(sig, params, 42);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->columns(), 3u);
  for (size_t j = 0; j < 3; ++j) {
    // Exactly ζ set bits (one bucket per zone): ||bv||_1 = ζ.
    EXPECT_EQ(index->vector(j).Count(), params.zones);
    EXPECT_EQ(index->vector(j).size(), params.zones * params.buckets_per_zone);
  }
  // Identical signatures -> identical bit-vectors, distance 0.
  EXPECT_EQ(index->Distance(0, 1), 0.0);
  // Distance is always an even number <= 2ζ (disagreeing zones count twice).
  const double d02 = index->Distance(0, 2);
  EXPECT_EQ(std::fmod(d02, 2.0), 0.0);
  EXPECT_LE(d02, 2.0 * static_cast<double>(params.zones));
}

TEST(LshIndexTest, DisagreementCountIsHalfHamming) {
  SignatureMatrix sig(6, 2);
  for (size_t i = 0; i < 6; ++i) {
    sig.UpdateMin(0, i, i);
    sig.UpdateMin(1, i, i < 2 ? i : 50 + i);  // share zone 0 (rows 0-1) only
  }
  LshParams params;
  params.zones = 3;
  params.rows_per_zone = 2;
  params.buckets_per_zone = 64;  // large B: hash collisions unlikely
  auto index = LshIndex::Build(sig, params, 7);
  ASSERT_TRUE(index.ok());
  size_t disagreements = 0;
  for (size_t z = 0; z < params.zones; ++z) {
    disagreements += index->Bucket(0, z) != index->Bucket(1, z);
  }
  EXPECT_EQ(index->Distance(0, 1), 2.0 * static_cast<double>(disagreements));
  EXPECT_EQ(index->Bucket(0, 0), index->Bucket(1, 0));  // shared band
}

TEST(LshIndexTest, BuildValidatesParams) {
  SignatureMatrix sig(10, 2);
  LshParams bad;
  bad.zones = 3;
  bad.rows_per_zone = 3;  // 9 != 10
  EXPECT_TRUE(LshIndex::Build(sig, bad, 1).status().IsInvalidArgument());
  LshParams unset;
  EXPECT_TRUE(LshIndex::Build(sig, unset, 1).status().IsInvalidArgument());
}

TEST(LshIndexTest, MemoryScalesWithZonesAndBuckets) {
  SignatureMatrix sig(100, 40);
  const auto small = LshIndex::Build(sig, ChooseZones(100, 0.4, 10).value(), 1);
  const auto large = LshIndex::Build(sig, ChooseZones(100, 0.1, 50).value(), 1);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // Lower threshold -> more zones; more buckets -> wider vectors.
  EXPECT_LT(small->MemoryBytes(), large->MemoryBytes());
}

TEST(LshIndexTest, SimilarColumnsCollideMoreThanDissimilarOnes) {
  // End-to-end statistical check on real signatures.
  const DataSet data = GenerateIndependent(4000, 3, 29);
  const auto skyline = SkylineSFS(data).rows;
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  const auto family = MinHashFamily::Create(100, data.size(), 8);
  auto sig = SigGenIF(data, skyline, family);
  ASSERT_TRUE(sig.ok());
  auto index = LshIndex::Build(sig->signatures, ChooseZones(100, 0.2, 20).value(), 9);
  ASSERT_TRUE(index.ok());
  const size_t m = skyline.size();
  // Average LSH distance of high-similarity pairs must be below that of
  // low-similarity pairs.
  double high_sum = 0.0, low_sum = 0.0;
  size_t high_n = 0, low_n = 0;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      const double js = gammas.JaccardSimilarity(a, b);
      if (js > 0.5) {
        high_sum += index->Distance(a, b);
        ++high_n;
      } else if (js < 0.1) {
        low_sum += index->Distance(a, b);
        ++low_n;
      }
    }
  }
  if (high_n > 0 && low_n > 0) {
    EXPECT_LT(high_sum / static_cast<double>(high_n),
              low_sum / static_cast<double>(low_n));
  }
}

}  // namespace
}  // namespace skydiver
