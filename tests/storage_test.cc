// Unit tests for binary persistence: binio primitives, DataSet and R-tree
// round trips, corruption detection.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/binio.h"
#include "core/dataset_io.h"
#include "minhash/siggen.h"
#include "datagen/generators.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// --------------------------------------------------------------------------
// binio
// --------------------------------------------------------------------------

TEST(BinIoTest, PrimitivesRoundTrip) {
  const std::string path = TempPath("binio_roundtrip.bin");
  const char magic[8] = {'T', 'E', 'S', 'T', 'M', 'A', 'G', '1'};
  {
    BinaryWriter writer(path, magic);
    ASSERT_TRUE(writer.ok());
    writer.WriteU8(7);
    writer.WriteU32(0xdeadbeef);
    writer.WriteU64(0x0123456789abcdefULL);
    writer.WriteDouble(-1.5e300);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path, magic);
  ASSERT_TRUE(reader.status().ok());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double d;
  ASSERT_TRUE(reader.ReadU8(&u8));
  ASSERT_TRUE(reader.ReadU32(&u32));
  ASSERT_TRUE(reader.ReadU64(&u64));
  ASSERT_TRUE(reader.ReadDouble(&d));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(d, -1.5e300);
  EXPECT_TRUE(reader.VerifyChecksum().ok());
  std::remove(path.c_str());
}

TEST(BinIoTest, WrongMagicRejected) {
  const std::string path = TempPath("binio_magic.bin");
  const char magic_a[8] = {'A', 'A', 'A', 'A', 'A', 'A', 'A', '1'};
  const char magic_b[8] = {'B', 'B', 'B', 'B', 'B', 'B', 'B', '1'};
  {
    BinaryWriter writer(path, magic_a);
    writer.WriteU32(1);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path, magic_b);
  EXPECT_TRUE(reader.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(BinIoTest, CorruptionDetectedByChecksum) {
  const std::string path = TempPath("binio_corrupt.bin");
  const char magic[8] = {'C', 'O', 'R', 'R', 'U', 'P', 'T', '1'};
  {
    BinaryWriter writer(path, magic);
    for (uint32_t i = 0; i < 100; ++i) writer.WriteU32(i);
    ASSERT_TRUE(writer.Finish().ok());
  }
  // Flip one payload byte.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(50);
    char byte;
    f.seekg(50);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(50);
    f.write(&byte, 1);
  }
  BinaryReader reader(path, magic);
  ASSERT_TRUE(reader.status().ok());
  uint32_t v;
  for (uint32_t i = 0; i < 100; ++i) ASSERT_TRUE(reader.ReadU32(&v));
  EXPECT_TRUE(reader.VerifyChecksum().IsIoError());
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// DataSet persistence
// --------------------------------------------------------------------------

TEST(DataSetIoTest, RoundTripIsExact) {
  const std::string path = TempPath("dataset_roundtrip.skyd");
  const DataSet data = GenerateAnticorrelated(5000, 4, 87);
  ASSERT_TRUE(SaveDataSet(data, path).ok());
  auto loaded = LoadDataSet(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dims(), data.dims());
  EXPECT_EQ(loaded->size(), data.size());
  EXPECT_EQ(loaded->values(), data.values());  // bit-exact doubles
  std::remove(path.c_str());
}

TEST(DataSetIoTest, MissingFileAndBadMagic) {
  EXPECT_TRUE(LoadDataSet("/nonexistent/file.skyd").status().IsIoError());
  const std::string path = TempPath("dataset_bad.skyd");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a skydiver file at all";
  }
  EXPECT_TRUE(LoadDataSet(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(DataSetIoTest, TruncationDetected) {
  const std::string path = TempPath("dataset_trunc.skyd");
  const DataSet data = GenerateIndependent(500, 3, 89);
  ASSERT_TRUE(SaveDataSet(data, path).ok());
  // Truncate the file by 100 bytes.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() - 100));
  }
  EXPECT_FALSE(LoadDataSet(path).ok());
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// RTree persistence
// --------------------------------------------------------------------------

TEST(RTreeIoTest, RoundTripPreservesStructureAndAnswers) {
  const std::string path = TempPath("rtree_roundtrip.skyd");
  const DataSet data = GenerateClustered(8000, 3, 91);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->SaveToFile(path).ok());

  auto loaded = RTree::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), tree->size());
  EXPECT_EQ(loaded->height(), tree->height());
  EXPECT_EQ(loaded->PageCount(), tree->PageCount());
  EXPECT_TRUE(loaded->CheckInvariants().ok());

  // Queries answer identically.
  const std::vector<Coord> lo{0.2, 0.2, 0.2}, hi{0.7, 0.6, 0.9};
  EXPECT_EQ(loaded->RangeCount(lo, hi), tree->RangeCount(lo, hi));
  for (RowId probe : {0u, 100u, 4000u}) {
    EXPECT_EQ(loaded->DominatedCount(data.row(probe)),
              tree->DominatedCount(data.row(probe)));
  }
  // BBS over the loaded tree gives the same skyline.
  EXPECT_EQ(SkylineBBS(data, *loaded)->rows, SkylineBBS(data, *tree)->rows);
  std::remove(path.c_str());
}

TEST(RTreeIoTest, DynamicTreeAlsoRoundTrips) {
  const std::string path = TempPath("rtree_dyn.skyd");
  const DataSet data = GenerateIndependent(2000, 4, 93);
  auto tree = RTree::InsertLoad(data);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->SaveToFile(path).ok());
  auto loaded = RTree::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->CheckInvariants().ok());
  EXPECT_EQ(loaded->size(), 2000u);
  std::remove(path.c_str());
}

TEST(RTreeIoTest, CorruptedFileRejected) {
  const std::string path = TempPath("rtree_corrupt.skyd");
  const DataSet data = GenerateIndependent(1000, 2, 95);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->SaveToFile(path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    const char junk = 0x5a;
    f.write(&junk, 1);
  }
  EXPECT_FALSE(RTree::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(RTreeIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(RTree::LoadFromFile("/nonexistent/tree.skyd").status().IsIoError());
}

// --------------------------------------------------------------------------
// SignatureMatrix persistence
// --------------------------------------------------------------------------

TEST(SignatureIoTest, RoundTripPreservesEstimates) {
  const std::string path = TempPath("signatures.skyd");
  const DataSet data = GenerateIndependent(2000, 3, 97);
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(64, data.size(), 99);
  const auto sig = SigGenIF(data, skyline, family).value();
  ASSERT_TRUE(sig.signatures.SaveToFile(path).ok());

  auto loaded = SignatureMatrix::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->signature_size(), sig.signatures.signature_size());
  ASSERT_EQ(loaded->columns(), sig.signatures.columns());
  for (size_t a = 0; a < skyline.size(); ++a) {
    for (size_t i = 0; i < 64; ++i) {
      ASSERT_EQ(loaded->at(a, i), sig.signatures.at(a, i));
    }
  }
  // Phase 2 can re-run from the reloaded fingerprints.
  EXPECT_DOUBLE_EQ(loaded->EstimatedDistance(0, skyline.size() - 1),
                   sig.signatures.EstimatedDistance(0, skyline.size() - 1));
  std::remove(path.c_str());
}

TEST(SignatureIoTest, RejectsForeignFiles) {
  const std::string path = TempPath("signatures_foreign.skyd");
  const DataSet data = GenerateIndependent(100, 2, 101);
  ASSERT_TRUE(SaveDataSet(data, path).ok());  // a SKYDDAT1 file, not SKYDSIG1
  EXPECT_TRUE(SignatureMatrix::LoadFromFile(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skydiver
