// Unit tests for src/stream: incremental skyline maintenance and the
// exact equivalence of streamed signatures with batch SigGen-IF.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/generators.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"
#include "stream/streaming.h"

namespace skydiver {
namespace {

TEST(StreamingTest, RejectsBadInput) {
  StreamingSkyDiver stream(2, 16, 1);
  EXPECT_TRUE(stream.Insert({1.0, 2.0, 3.0}).IsInvalidArgument());  // wrong dims
  EXPECT_TRUE(stream.SelectDiverse(1).status().IsInvalidArgument());  // empty
}

TEST(StreamingTest, MaintainsSkylineUnderDemotions) {
  StreamingSkyDiver stream(2, 16, 1);
  ASSERT_TRUE(stream.Insert({5.0, 5.0}).ok());  // row 0: skyline
  EXPECT_EQ(stream.SkylineRows(), std::vector<RowId>{0});
  ASSERT_TRUE(stream.Insert({6.0, 6.0}).ok());  // row 1: dominated
  EXPECT_EQ(stream.SkylineRows(), std::vector<RowId>{0});
  ASSERT_TRUE(stream.Insert({4.0, 6.0}).ok());  // row 2: skyline (incomparable)
  EXPECT_EQ(stream.SkylineRows(), (std::vector<RowId>{0, 2}));
  ASSERT_TRUE(stream.Insert({3.0, 3.0}).ok());  // row 3: demotes rows 0 and 2
  EXPECT_EQ(stream.SkylineRows(), std::vector<RowId>{3});
  EXPECT_EQ(stream.stats().demotions, 2u);
  // Γ(3) = {0, 1, 2}.
  EXPECT_EQ(stream.DominationScore(3).value(), 3u);
  EXPECT_TRUE(stream.DominationScore(0).status().IsNotFound());
}

TEST(StreamingTest, StreamLimitEnforced) {
  StreamingSkyDiver stream(1, 4, 1, /*max_points=*/2);
  ASSERT_TRUE(stream.Insert({1.0}).ok());
  ASSERT_TRUE(stream.Insert({2.0}).ok());
  EXPECT_TRUE(stream.Insert({3.0}).IsOutOfRange());
}

class StreamingEquivalenceTest : public testing::TestWithParam<WorkloadKind> {};

TEST_P(StreamingEquivalenceTest, MatchesBatchSkylineAndSignatures) {
  const RowId n = 3000;
  const Dim d = 3;
  const uint64_t max_points = 4096;
  const auto data = GenerateWorkload(GetParam(), n, d, 59).value();

  const size_t t = 32;
  const uint64_t seed = 61;
  StreamingSkyDiver stream(d, t, seed, max_points);
  for (RowId r = 0; r < n; ++r) {
    ASSERT_TRUE(stream.Insert(data.row(r)).ok());
  }

  // Skyline must equal the batch skyline.
  const auto batch_skyline = SkylineSFS(data).rows;
  EXPECT_EQ(stream.SkylineRows(), batch_skyline);

  // Signatures must be bit-for-bit the batch SigGen-IF output under the
  // same hash family (same t, same universe, same seed).
  const auto family = MinHashFamily::Create(t, max_points, seed);
  const auto batch = SigGenIF(data, batch_skyline, family).value();
  for (size_t j = 0; j < batch_skyline.size(); ++j) {
    const auto streamed = stream.Signature(batch_skyline[j]).value();
    for (size_t i = 0; i < t; ++i) {
      ASSERT_EQ(streamed[i], batch.signatures.at(j, i))
          << "skyline row " << batch_skyline[j] << " slot " << i;
    }
    EXPECT_EQ(stream.DominationScore(batch_skyline[j]).value(),
              batch.domination_scores[j]);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, StreamingEquivalenceTest,
                         testing::Values(WorkloadKind::kIndependent,
                                         WorkloadKind::kAnticorrelated,
                                         WorkloadKind::kCorrelated,
                                         WorkloadKind::kRecipesLike),
                         [](const testing::TestParamInfo<WorkloadKind>& info) {
                           return WorkloadKindName(info.param);
                         });

TEST(StreamingTest, SelectDiverseReturnsSkylineMembers) {
  const auto data = GenerateIndependent(2000, 3, 63);
  StreamingSkyDiver stream(3, 64, 65, 4096);
  for (RowId r = 0; r < data.size(); ++r) {
    ASSERT_TRUE(stream.Insert(data.row(r)).ok());
  }
  const auto skyline = stream.SkylineRows();
  const size_t k = std::min<size_t>(5, skyline.size());
  const auto selected = stream.SelectDiverse(k).value();
  EXPECT_EQ(selected.size(), k);
  for (RowId r : selected) {
    EXPECT_TRUE(std::find(skyline.begin(), skyline.end(), r) != skyline.end());
  }
}

TEST(StreamingTest, SelectionAvailableAtAnyPrefix) {
  // Continuous-query style usage: select after every batch of arrivals.
  const auto data = GenerateAnticorrelated(1200, 2, 67);
  StreamingSkyDiver stream(2, 32, 69, 2048);
  for (RowId r = 0; r < data.size(); ++r) {
    ASSERT_TRUE(stream.Insert(data.row(r)).ok());
    if ((r + 1) % 300 == 0) {
      const auto skyline = stream.SkylineRows();
      const size_t k = std::min<size_t>(3, skyline.size());
      if (k >= 1) {
        auto sel = stream.SelectDiverse(k);
        ASSERT_TRUE(sel.ok()) << sel.status().ToString();
        EXPECT_EQ(sel->size(), k);
      }
      // Incremental state must match a from-scratch computation.
      auto prefix = DataSet(2);
      for (RowId q = 0; q <= r; ++q) prefix.Append(data.row(q));
      EXPECT_EQ(stream.SkylineRows(), SkylineSFS(prefix).rows);
    }
  }
}

TEST(StreamingTest, StatsAreConsistent) {
  const auto data = GenerateIndependent(1000, 3, 71);
  StreamingSkyDiver stream(3, 16, 73, 2048);
  for (RowId r = 0; r < data.size(); ++r) {
    ASSERT_TRUE(stream.Insert(data.row(r)).ok());
  }
  const auto& stats = stream.stats();
  EXPECT_EQ(stats.inserts, 1000u);
  EXPECT_EQ(stats.skyline_insertions - stats.demotions, stream.SkylineRows().size());
  EXPECT_EQ(stats.skyline_insertions + stats.dominated_arrivals, 1000u);
}

}  // namespace
}  // namespace skydiver
