// Unit tests for src/datagen: generators and CSV round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "datagen/csv.h"
#include "datagen/generators.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

void ExpectInUnitBox(const DataSet& d) {
  for (RowId r = 0; r < d.size(); ++r) {
    for (Dim i = 0; i < d.dims(); ++i) {
      EXPECT_GE(d.at(r, i), 0.0) << "row " << r << " dim " << i;
      EXPECT_LE(d.at(r, i), 1.0) << "row " << r << " dim " << i;
    }
  }
}

TEST(GeneratorsTest, ShapesAndDomain) {
  for (WorkloadKind kind :
       {WorkloadKind::kIndependent, WorkloadKind::kCorrelated,
        WorkloadKind::kAnticorrelated, WorkloadKind::kClustered,
        WorkloadKind::kForestCoverLike, WorkloadKind::kRecipesLike}) {
    auto data = GenerateWorkload(kind, 2000, 4, 1);
    ASSERT_TRUE(data.ok()) << WorkloadKindName(kind);
    EXPECT_EQ(data->size(), 2000u);
    EXPECT_EQ(data->dims(), 4u);
    ExpectInUnitBox(*data);
  }
}

TEST(GeneratorsTest, Deterministic) {
  const DataSet a = GenerateIndependent(500, 3, 77);
  const DataSet b = GenerateIndependent(500, 3, 77);
  EXPECT_EQ(a.values(), b.values());
  const DataSet c = GenerateIndependent(500, 3, 78);
  EXPECT_NE(a.values(), c.values());
}

TEST(GeneratorsTest, AnticorrelatedHasLargerSkylineThanCorrelated) {
  const RowId n = 5000;
  const Dim d = 4;
  const auto sky_corr = SkylineSFS(GenerateCorrelated(n, d, 3)).rows.size();
  const auto sky_ind = SkylineSFS(GenerateIndependent(n, d, 3)).rows.size();
  const auto sky_ant = SkylineSFS(GenerateAnticorrelated(n, d, 3)).rows.size();
  // The canonical ordering of skyline sizes: CORR < IND < ANT.
  EXPECT_LT(sky_corr, sky_ind);
  EXPECT_LT(sky_ind, sky_ant);
}

TEST(GeneratorsTest, AnticorrelatedIsNegativelyCorrelated) {
  const DataSet d = GenerateAnticorrelated(20000, 2, 5);
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const auto n = static_cast<double>(d.size());
  for (RowId r = 0; r < d.size(); ++r) {
    const double x = d.at(r, 0), y = d.at(r, 1);
    sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double corr = cov / std::sqrt((sxx / n - sx / n * (sx / n)) *
                                      (syy / n - sy / n * (sy / n)));
  EXPECT_LT(corr, -0.3);
}

TEST(GeneratorsTest, CorrelatedIsPositivelyCorrelated) {
  const DataSet d = GenerateCorrelated(20000, 2, 5);
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const auto n = static_cast<double>(d.size());
  for (RowId r = 0; r < d.size(); ++r) {
    const double x = d.at(r, 0), y = d.at(r, 1);
    sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double corr = cov / std::sqrt((sxx / n - sx / n * (sx / n)) *
                                      (syy / n - sy / n * (sy / n)));
  EXPECT_GT(corr, 0.3);
}

TEST(GeneratorsTest, RecipesLikeIsZeroInflated) {
  const DataSet d = GenerateRecipesLike(10000, 5, 9);
  size_t zeros = 0;
  for (RowId r = 0; r < d.size(); ++r) {
    for (Dim i = 0; i < d.dims(); ++i) zeros += (d.at(r, i) == 0.0);
  }
  const double frac = static_cast<double>(zeros) / (10000.0 * 5.0);
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.25);
}

TEST(GeneratorsTest, ForestCoverLikeIsQuantized) {
  const DataSet d = GenerateForestCoverLike(5000, 4, 11);
  for (RowId r = 0; r < 100; ++r) {
    for (Dim i = 0; i < d.dims(); ++i) {
      const double v = d.at(r, i) * 1024.0;
      EXPECT_NEAR(v, std::round(v), 1e-9);  // values on the 1/1024 grid
    }
  }
}

TEST(GeneratorsTest, ParseWorkloadKindNames) {
  EXPECT_EQ(ParseWorkloadKind("ind").value(), WorkloadKind::kIndependent);
  EXPECT_EQ(ParseWorkloadKind("ANT").value(), WorkloadKind::kAnticorrelated);
  EXPECT_EQ(ParseWorkloadKind("Corr").value(), WorkloadKind::kCorrelated);
  EXPECT_EQ(ParseWorkloadKind("fc").value(), WorkloadKind::kForestCoverLike);
  EXPECT_EQ(ParseWorkloadKind("REC").value(), WorkloadKind::kRecipesLike);
  EXPECT_TRUE(ParseWorkloadKind("nope").status().IsInvalidArgument());
}

TEST(GeneratorsTest, RoundTripNames) {
  for (WorkloadKind kind :
       {WorkloadKind::kIndependent, WorkloadKind::kCorrelated,
        WorkloadKind::kAnticorrelated, WorkloadKind::kClustered,
        WorkloadKind::kForestCoverLike, WorkloadKind::kRecipesLike}) {
    EXPECT_EQ(ParseWorkloadKind(WorkloadKindName(kind)).value(), kind);
  }
}

TEST(GeneratorsTest, RejectsDegenerateParams) {
  EXPECT_TRUE(GenerateWorkload(WorkloadKind::kIndependent, 0, 3, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GenerateWorkload(WorkloadKind::kIndependent, 10, 0, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(GeneratorsTest, DefaultCardinalitiesMatchPaper) {
  EXPECT_EQ(DefaultCardinality(WorkloadKind::kIndependent), 5000000u);
  EXPECT_EQ(DefaultCardinality(WorkloadKind::kForestCoverLike), 581012u);
  EXPECT_EQ(DefaultCardinality(WorkloadKind::kRecipesLike), 365000u);
}

// --------------------------------------------------------------------------
// CSV
// --------------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  const DataSet d = GenerateIndependent(100, 3, 21);
  const std::string path = testing::TempDir() + "/skydiver_csv_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), d.size());
  ASSERT_EQ(back->dims(), d.dims());
  for (RowId r = 0; r < d.size(); ++r) {
    for (Dim i = 0; i < d.dims(); ++i) {
      EXPECT_DOUBLE_EQ(back->at(r, i), d.at(r, i));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, SkipHeader) {
  const std::string path = testing::TempDir() + "/skydiver_csv_header.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("a,b\n1.5,2.5\n\n3.0,4.0\n", f);
    fclose(f);
  }
  auto d = ReadCsv(path, /*skip_header=*/true);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2u);
  EXPECT_DOUBLE_EQ(d->at(1, 1), 4.0);
  std::remove(path.c_str());
}

TEST(CsvTest, ErrorsAreReported) {
  EXPECT_TRUE(ReadCsv("/nonexistent/path.csv").status().IsIoError());
  const std::string path = testing::TempDir() + "/skydiver_csv_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("1.0,2.0\n1.0\n", f);  // ragged rows
    fclose(f);
  }
  EXPECT_TRUE(ReadCsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skydiver
