// Tests for the morsel scheduler (parallel/morsel.h): claim protocol
// invariants, ThreadPool::SubmitBatch, and the determinism stress suite —
// every morselized operation must be bit-identical to its serial
// counterpart at every thread count and morsel size, even with random
// per-claim worker stalls scrambling the scheduling order.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/data_view.h"
#include "datagen/generators.h"
#include "diversify/dispersion.h"
#include "minhash/siggen.h"
#include "parallel/morsel.h"
#include "parallel/parallel_ops.h"
#include "parallel/thread_pool.h"
#include "skyline/skyline.h"
#include "stream/streaming.h"

namespace skydiver {
namespace {

// ---------------------------------------------------------------------------
// MorselQueue claim protocol
// ---------------------------------------------------------------------------

TEST(MorselQueueTest, ClaimsPartitionTheRangeInSlotOrder) {
  MorselConfig cfg;
  cfg.morsel_rows = 64;
  cfg.batch_morsels = 1;
  MorselQueue queue(1000, 4, cfg);
  EXPECT_EQ(queue.morsel_rows(), 64u);
  EXPECT_EQ(queue.batch_morsels(), 1u);
  EXPECT_EQ(queue.claim_rows(), 64u);
  ASSERT_EQ(queue.slots(), 16u);  // ceil(1000 / 64)

  MorselQueue::Claim claim;
  uint64_t expected_begin = 0;
  size_t expected_slot = 0;
  while (queue.Next(&claim)) {
    // The slot is a pure function of the row range, and single-threaded
    // draining must see the ranges in ascending, gap-free order.
    EXPECT_EQ(claim.slot, expected_slot);
    EXPECT_EQ(claim.begin, expected_begin);
    EXPECT_EQ(claim.begin, claim.slot * queue.claim_rows());
    EXPECT_GT(claim.end, claim.begin);
    expected_begin = claim.end;
    ++expected_slot;
  }
  EXPECT_EQ(expected_begin, 1000u);  // ragged tail clamped to n
  EXPECT_EQ(expected_slot, queue.slots());
  EXPECT_FALSE(queue.Next(&claim));  // exhausted forever
  EXPECT_EQ(queue.stats().claims, 16u);
  EXPECT_EQ(queue.stats().rows, 1000u);
}

TEST(MorselQueueTest, AutoBatchBoundsSlotCount) {
  // 10000 rows / 128-row morsels = 79 morsels; with 4 workers the auto
  // batch targets kClaimsPerWorker * 4 = 16 claims, so slots stay small
  // (bounding per-slot reduction state) while still covering every row.
  MorselQueue queue(10000, 4, MorselConfig{});
  EXPECT_EQ(queue.morsel_rows(), kDefaultMorselRows);
  EXPECT_LE(queue.slots(), kClaimsPerWorker * 4);
  EXPECT_GE(queue.slots() * queue.claim_rows(), 10000u);

  MorselQueue::Claim claim;
  uint64_t covered = 0;
  while (queue.Next(&claim)) covered += claim.end - claim.begin;
  EXPECT_EQ(covered, 10000u);
}

TEST(MorselQueueTest, SmallInputsGetOneSlotPerMorsel) {
  // Fewer morsels than the claim target: batch stays 1.
  MorselQueue queue(300, 8, MorselConfig{});
  EXPECT_EQ(queue.batch_morsels(), 1u);
  EXPECT_EQ(queue.slots(), 3u);  // ceil(300 / 128)
}

TEST(MorselQueueTest, EmptyRangeGrantsNothing) {
  MorselQueue queue(0, 4, MorselConfig{});
  EXPECT_EQ(queue.slots(), 0u);
  MorselQueue::Claim claim;
  EXPECT_FALSE(queue.Next(&claim));
  EXPECT_EQ(queue.stats().claims, 0u);
}

TEST(MorselQueueTest, ConcurrentClaimsAreExactlyOnce) {
  // Hammer Next() from pool workers: every slot must be granted exactly
  // once, regardless of interleaving.
  MorselConfig cfg;
  cfg.morsel_rows = 16;
  cfg.batch_morsels = 1;
  MorselQueue queue(16 * 257, 8, cfg);
  ASSERT_EQ(queue.slots(), 257u);
  std::vector<std::atomic<uint32_t>> granted(queue.slots());
  ThreadPool pool(8);
  RunMorsels(pool, queue, [&granted](const MorselQueue::Claim& c) {
    granted[c.slot].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t s = 0; s < granted.size(); ++s) {
    EXPECT_EQ(granted[s].load(), 1u) << "slot " << s;
  }
  EXPECT_EQ(queue.stats().claims, 257u);
}

// ---------------------------------------------------------------------------
// ThreadPool::SubmitBatch
// ---------------------------------------------------------------------------

TEST(SubmitBatchTest, RunsEveryTaskInTheBatch) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks(
      64, [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  ASSERT_TRUE(pool.SubmitBatch(tasks));
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(SubmitBatchTest, EmptyBatchIsTriviallyAccepted) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  EXPECT_TRUE(pool.SubmitBatch(tasks));
  pool.Wait();
}

TEST(SubmitBatchTest, RejectedWholesaleAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks(
      8, [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_FALSE(pool.SubmitBatch(tasks));  // all-or-nothing: none queued
  pool.Wait();
  EXPECT_EQ(counter.load(), 0);
}

// ---------------------------------------------------------------------------
// Determinism stress suite
//
// Each morselized op runs at every thread count (suite parameter) and
// several morsel geometries — one tile per claim, three tiles, and the
// default (ragged tail either way, since n is prime) — and must reproduce
// the serial result bit for bit. RunMorsels itself additionally runs with
// the stall hook injecting random per-claim delays (seeded by the claim,
// never the thread) to scramble which worker gets which claim.
// ---------------------------------------------------------------------------

// FNV-1a over a stream of u64s — digest equality is the bit-parity check.
class Fnv {
 public:
  void Add(uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      hash_ = (hash_ ^ ((v >> (8 * b)) & 0xff)) * 1099511628211ULL;
    }
  }
  void Add(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    Add(bits);
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ULL;
};

uint64_t SigGenDigest(const SigGenResult& r, size_t m, size_t t) {
  Fnv fnv;
  for (uint64_t s : r.domination_scores) fnv.Add(s);
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < t; ++i) fnv.Add(r.signatures.at(j, i));
  }
  return fnv.digest();
}

uint64_t SelectionDigest(const DispersionResult& r) {
  Fnv fnv;
  for (size_t i : r.selected) fnv.Add(static_cast<uint64_t>(i));
  fnv.Add(r.min_pairwise);
  fnv.Add(r.distance_evaluations);
  return fnv.digest();
}

// The morsel geometries under stress: one tile per claim, three tiles with
// auto batching, and the default. n below is prime, so every geometry ends
// in a ragged tail claim.
std::vector<MorselConfig> StressConfigs() {
  MorselConfig one_tile;
  one_tile.morsel_rows = 64;
  one_tile.batch_morsels = 1;
  MorselConfig three_tiles;
  three_tiles.morsel_rows = 192;
  return {one_tile, three_tiles, MorselConfig{}};
}

class MorselDeterminismTest : public testing::TestWithParam<size_t> {};

TEST_P(MorselDeterminismTest, RunMorselsWithRandomStallsFillsSlotsExactly) {
  // Direct scheduler stress: random per-claim stalls (a pure function of
  // the claim, never the thread) scramble the claim/worker assignment; the
  // per-slot sums must still land exactly once in their slots.
  ThreadPool pool(GetParam());
  const uint64_t n = 2113;  // prime: ragged tail under every geometry
  for (const MorselConfig& cfg : StressConfigs()) {
    MorselQueue queue(n, pool.size(), cfg);
    std::vector<uint64_t> slot_sums(queue.slots(), 0);
    const std::function<void(const MorselQueue::Claim&)> stall =
        [](const MorselQueue::Claim& c) {
          Rng rng(c.begin * 0x9e3779b97f4a7c15ULL + c.slot);
          std::this_thread::sleep_for(
              std::chrono::microseconds(rng.NextBounded(200)));
        };
    RunMorsels(
        pool, queue,
        [&slot_sums](const MorselQueue::Claim& c) {
          for (uint64_t r = c.begin; r < c.end; ++r) slot_sums[c.slot] += r;
        },
        &stall);
    uint64_t total = 0;
    for (uint64_t s : slot_sums) total += s;
    EXPECT_EQ(total, n * (n - 1) / 2) << "morsel_rows=" << cfg.morsel_rows;
  }
}

TEST_P(MorselDeterminismTest, SkylineBitIdenticalToSerial) {
  ThreadPool pool(GetParam());
  const auto data = GenerateAnticorrelated(2113, 4, 101);
  const auto serial = SkylineSFS(data).rows;
  for (const MorselConfig& cfg : StressConfigs()) {
    // ParallelSkyline derives batching from the pool internally; the morsel
    // size is the exposed knob.
    EXPECT_EQ(ParallelSkyline(data, pool, DomKernel::kSimd, cfg.morsel_rows).rows,
              serial)
        << "threads=" << GetParam() << " morsel_rows=" << cfg.morsel_rows;
  }
}

TEST_P(MorselDeterminismTest, SigGenIfBitIdenticalToSerial) {
  ThreadPool pool(GetParam());
  const auto data = GenerateIndependent(2113, 5, 103);
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(48, data.size(), 107);
  const auto serial = SigGenIF(data, skyline, family).value();
  const uint64_t want = SigGenDigest(serial, skyline.size(), family.size());
  for (const MorselConfig& cfg : StressConfigs()) {
    const auto parallel =
        ParallelSigGenIF(data, skyline, family, pool, DomKernel::kSimd,
                         cfg.morsel_rows)
            .value();
    EXPECT_EQ(SigGenDigest(parallel, skyline.size(), family.size()), want)
        << "threads=" << GetParam() << " morsel_rows=" << cfg.morsel_rows;
  }
}

TEST_P(MorselDeterminismTest, ShardedSkylineBitIdenticalToSerial) {
  ThreadPool pool(GetParam());
  const auto data = GenerateIndependent(2113, 4, 109);
  const DataView view(data);
  for (size_t shards : {3u, 8u}) {
    const auto serial = SkylineSharded(view, shards, DomKernel::kTiled);
    const auto pooled = ShardedSkyline(view, shards, &pool, DomKernel::kTiled);
    EXPECT_EQ(pooled.rows, serial.rows)
        << "threads=" << GetParam() << " shards=" << shards;
    // Slot = shard id fixes the merge order, so even the dominance-check
    // accounting of the merge phase is deterministic.
    EXPECT_EQ(pooled.dominance_checks, serial.dominance_checks)
        << "threads=" << GetParam() << " shards=" << shards;
  }
}

TEST_P(MorselDeterminismTest, SelectionBitIdenticalToSerial) {
  ThreadPool pool(GetParam());
  const auto data = GenerateIndependent(2113, 6, 113);
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(32, data.size(), 127);
  const auto sig = SigGenIF(data, skyline, family).value();
  const size_t m = skyline.size();
  ASSERT_GE(m, 24u);
  // MinHash-estimated Jaccard distance, plus a random per-pair stall (a
  // pure function of the pair) so worker timing varies between runs.
  const DistanceFn distance = [&sig](size_t a, size_t b) {
    Rng rng(a * 2654435761ULL + b);
    std::this_thread::sleep_for(std::chrono::nanoseconds(rng.NextBounded(2000)));
    return 1.0 - sig.signatures.EstimatedSimilarity(a, b);
  };
  for (size_t k : {1u, 2u, 12u}) {
    const auto serial = SelectDiverseSet(m, k, distance, sig.domination_scores);
    ASSERT_TRUE(serial.ok());
    const uint64_t want = SelectionDigest(serial.value());
    for (const MorselConfig& cfg : StressConfigs()) {
      const auto parallel = ParallelSelectDiverseSet(
          m, k, distance, sig.domination_scores, pool, cfg.morsel_rows);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(SelectionDigest(parallel.value()), want)
          << "threads=" << GetParam() << " k=" << k
          << " morsel_rows=" << cfg.morsel_rows;
    }
  }
}

TEST_P(MorselDeterminismTest, StreamingStoreScanBitIdenticalToSerial) {
  ThreadPool pool(GetParam());
  const auto data = GenerateIndependent(1500, 3, 131);
  StreamingSkyDiver serial(3, 24, 137, 1u << 14, DomKernel::kTiled);
  StreamingSkyDiver pooled(3, 24, 137, 1u << 14, DomKernel::kTiled, &pool);
  for (RowId r = 0; r < data.size(); ++r) {
    ASSERT_TRUE(serial.Insert(data.row(r)).ok());
    ASSERT_TRUE(pooled.Insert(data.row(r)).ok());
  }
  const auto a = serial.ExportFingerprints().value();
  const auto b = pooled.ExportFingerprints().value();
  ASSERT_EQ(b.skyline, a.skyline);
  ASSERT_EQ(b.domination_scores, a.domination_scores);
  for (size_t j = 0; j < a.skyline.size(); ++j) {
    for (size_t i = 0; i < 24; ++i) {
      ASSERT_EQ(b.signatures.at(j, i), a.signatures.at(j, i))
          << "threads=" << GetParam() << " col " << j << " slot " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, MorselDeterminismTest,
                         testing::Values<size_t>(1, 2, 4, 8),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return "threads" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Selection validation parity with the serial entry point
// ---------------------------------------------------------------------------

TEST(ParallelSelectionTest, ValidatesLikeSerial) {
  ThreadPool pool(2);
  const DistanceFn distance = [](size_t, size_t) { return 1.0; };
  const ScoreFn score = [](size_t) { return 0.0; };
  EXPECT_TRUE(ParallelSelectDiverseSet(0, 1, distance, score, pool)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParallelSelectDiverseSet(5, 0, distance, score, pool)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParallelSelectDiverseSet(5, 6, distance, score, pool)
                  .status()
                  .IsInvalidArgument());
  const std::vector<uint64_t> short_scores(3, 1);
  EXPECT_TRUE(ParallelSelectDiverseSet(5, 2, distance, short_scores, pool)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace skydiver
