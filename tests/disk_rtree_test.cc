// Tests for the file-backed R-tree: page serialization round trips, the
// pinned frame cache on real reads, corrupt/truncated-file handling, the
// pread/mmap backend split, async prefetch parity, and the full
// index-based pipeline (BBS + SigGen-IB) running straight off a page file.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/binio.h"
#include "datagen/generators.h"
#include "minhash/siggen.h"
#include "parallel/thread_pool.h"
#include "rtree/disk_rtree.h"
#include "rtree/rtree.h"
#include "skydiver/skydiver.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

struct DiskFixture {
  DataSet data = DataSet(1);
  std::string path;
  // Keep the in-memory tree for cross-checks.
  Result<RTree> memory = Status::Internal("unset");

  static DiskFixture Make(WorkloadKind kind, RowId n, Dim d, const std::string& name) {
    DiskFixture f;
    f.data = GenerateWorkload(kind, n, d, 211).value();
    f.path = TempPath(name);
    f.memory = RTree::BulkLoad(f.data);
    EXPECT_TRUE(DiskRTree::Write(*f.memory, f.path).ok());
    return f;
  }
};

uint64_t RowsDigest(const std::vector<RowId>& rows) {
  Fnv1a sum;
  for (const RowId r : rows) sum.Update(&r, sizeof(r));
  return sum.digest();
}

TEST(DiskRTreeTest, OpenReadsGeometry) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 5000, 3, "disk_geom.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(disk->dims(), 3u);
  EXPECT_EQ(disk->size(), 5000u);
  EXPECT_EQ(disk->root(), f.memory->root());
  EXPECT_EQ(disk->height(), f.memory->height());
  EXPECT_EQ(disk->PageCount(), f.memory->PageCount());
  EXPECT_EQ(disk->backend(), DiskBackend::kPread);
  EXPECT_FALSE(disk->prefetch_enabled());
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, NodesDeserializeExactly) {
  auto f = DiskFixture::Make(WorkloadKind::kClustered, 4000, 4, "disk_nodes.pages");
  auto disk = DiskRTree::Open(f.path, /*cache_fraction=*/1.0);
  ASSERT_TRUE(disk.ok());
  for (PageId id = 0; id < f.memory->PageCount(); ++id) {
    const RTreeNode& mem_node = f.memory->ReadNode(id);
    auto ref = disk->ReadNode(id);
    ASSERT_TRUE(ref.ok()) << "page " << id << ": " << ref.status().ToString();
    const RTreeNode& disk_node = ref->node();
    ASSERT_EQ(disk_node.is_leaf, mem_node.is_leaf) << "page " << id;
    ASSERT_EQ(disk_node.entries.size(), mem_node.entries.size()) << "page " << id;
    for (size_t e = 0; e < mem_node.entries.size(); ++e) {
      EXPECT_TRUE(disk_node.entries[e].mbr == mem_node.entries[e].mbr);
      EXPECT_EQ(disk_node.entries[e].child, mem_node.entries[e].child);
      EXPECT_EQ(disk_node.entries[e].count, mem_node.entries[e].count);
      EXPECT_EQ(disk_node.entries[e].row, mem_node.entries[e].row);
    }
  }
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, QueriesMatchInMemoryTree) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 8000, 3, "disk_query.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok());
  const std::vector<Coord> lo{0.1, 0.2, 0.3}, hi{0.6, 0.9, 0.7};
  EXPECT_EQ(disk->RangeCount(lo, hi).value(), f.memory->RangeCount(lo, hi));
  auto disk_rows = disk->RangeSearch(lo, hi).value();
  auto mem_rows = f.memory->RangeSearch(lo, hi);
  std::sort(disk_rows.begin(), disk_rows.end());
  std::sort(mem_rows.begin(), mem_rows.end());
  EXPECT_EQ(disk_rows, mem_rows);
  for (RowId probe : {0u, 777u, 7999u}) {
    EXPECT_EQ(disk->DominatedCount(f.data.row(probe)).value(),
              f.memory->DominatedCount(f.data.row(probe)));
  }
  EXPECT_EQ(disk->CommonDominatedCount(f.data.row(1), f.data.row(2)).value(),
            f.memory->CommonDominatedCount(f.data.row(1), f.data.row(2)));
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, FrameCacheHitsAndColdMisses) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 20000, 2, "disk_cache.pages");
  auto disk = DiskRTree::Open(f.path, /*cache_fraction=*/0.5);
  ASSERT_TRUE(disk.ok());
  const std::vector<Coord> lo{0.4, 0.4}, hi{0.45, 0.45};
  disk->ResetIoStats();
  (void)disk->RangeCount(lo, hi);
  const uint64_t cold_faults = disk->io_stats().page_faults;
  EXPECT_GT(cold_faults, 0u);
  (void)disk->RangeCount(lo, hi);
  EXPECT_EQ(disk->io_stats().page_faults, cold_faults);  // warm: all hits
  disk->DropCache();
  (void)disk->RangeCount(lo, hi);
  EXPECT_EQ(disk->io_stats().page_faults, 2 * cold_faults);  // cold again
  std::remove(f.path.c_str());
}

// Regression for the eviction use-after-free: the old frame cache returned
// `const RTreeNode&` into an evictable slot, so reading cache_capacity()+1
// other pages invalidated a reference the caller still held. The pinned
// handle must keep the frame resident through arbitrary cache churn
// (under ASan this test reads freed memory with the old code).
TEST(DiskRTreeTest, PinnedRefSurvivesCacheChurn) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 20000, 3, "disk_pin.pages");
  DiskTreeOptions options;
  options.cache_fraction = 0.01;  // tiny: every read evicts
  auto disk = DiskRTree::Open(f.path, options);
  ASSERT_TRUE(disk.ok());
  ASSERT_GT(disk->PageCount(), disk->cache_capacity() + 1);

  auto pinned = disk->ReadNode(disk->root());
  ASSERT_TRUE(pinned.ok());
  const RTreeNode& node = pinned->node();
  const size_t entries_before = node.entries.size();
  const PageId first_child = node.entries.front().child;

  // Thrash the cache far past capacity while the pin is live.
  for (PageId id = 0; id < disk->cache_capacity() + 1; ++id) {
    if (id == disk->root()) continue;
    auto scratch = disk->ReadNode(id);
    ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  }

  // The pinned node is still intact and readable.
  EXPECT_EQ(node.entries.size(), entries_before);
  EXPECT_EQ(node.entries.front().child, first_child);
  EXPECT_EQ(node.id, disk->root());
  std::remove(f.path.c_str());
}

// Regression for the serialization heap overflow: the old Write serialized
// every entry first and bounds-checked after, so a node too big for its
// page had already scribbled past the buffer. The check now runs BEFORE
// each entry and surfaces as a clean Status.
TEST(DiskRTreeTest, OversizedNodeIsACleanSerializationError) {
  const Dim dims = 4;
  const uint32_t page_size = 256;  // too small for the node below
  RTreeNode node;
  node.id = 7;
  node.is_leaf = true;
  std::vector<Coord> p(dims, 0.5);
  for (RowId r = 0; r < 64; ++r) {
    RTreeEntry e;
    e.mbr = Mbr::OfPoint(p);
    e.row = r;
    node.entries.push_back(e);
  }
  std::vector<unsigned char> page;
  const Status s = detail::SerializeNode(node, dims, page_size, &page);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInternal()) << s.ToString();
  EXPECT_NE(s.ToString().find("overflows its page"), std::string::npos) << s.ToString();
  // The buffer was never written past its bounds: still exactly one page.
  EXPECT_EQ(page.size(), page_size);
}

// Regression for the std::abort() on short reads: a file that passes the
// header checks but is missing node pages must fail Open (the geometry
// check) — and a file truncated mid-page must fail the read with a Status,
// never a crash.
TEST(DiskRTreeTest, TruncatedFileIsAStatusNotACrash) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 5000, 3, "disk_trunc.pages");
  const auto full_size = std::filesystem::file_size(f.path);
  const auto page_size = DiskRTree::Open(f.path)->page_size();

  // Chop half a page off the tail: Open's size-vs-geometry check fires.
  std::filesystem::resize_file(f.path, full_size - page_size / 2);
  auto truncated = DiskRTree::Open(f.path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_TRUE(truncated.status().IsIoError()) << truncated.status().ToString();
  EXPECT_NE(truncated.status().ToString().find("truncated or corrupt"),
            std::string::npos);
  std::remove(f.path.c_str());
}

// Regression for trusted header/page geometry: a node page whose declared
// entry count overflows the page must fail the read (IoError), not read
// out of bounds. The header itself is intact, so Open succeeds.
TEST(DiskRTreeTest, CorruptEntryCountFailsTheReadNotTheProcess) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 3000, 2, "disk_count.pages");
  const auto page_size = DiskRTree::Open(f.path)->page_size();
  {
    // Node page 0 lives at file offset page_size; its entry count is the
    // u32 at byte 4 of the node header.
    std::fstream file(f.path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(page_size + 4);
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};
    file.write(reinterpret_cast<const char*>(huge), 4);
  }
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  auto ref = disk->ReadNode(0);
  ASSERT_FALSE(ref.ok());
  EXPECT_TRUE(ref.status().IsIoError()) << ref.status().ToString();
  EXPECT_NE(ref.status().ToString().find("corrupt node page"), std::string::npos);

  // The failure is not sticky for other pages and not cached for this one:
  // a healthy page still reads, and re-reading page 0 re-fails cleanly.
  EXPECT_FALSE(disk->ReadNode(0).ok());
  std::remove(f.path.c_str());
}

// Regression for the fake stats save/restore: Write's old comment claimed
// the tree's I/O counters were saved and restored around serialization and
// did neither, so Write inflated reads/faults. Serialization now reads via
// PeekNode and is stats-neutral by construction.
TEST(DiskRTreeTest, WriteIsStatsNeutral) {
  DataSet data = GenerateWorkload(WorkloadKind::kIndependent, 6000, 3, 211).value();
  auto tree = RTree::BulkLoad(data).value();
  // Accumulate some honest query traffic first.
  const std::vector<Coord> lo{0.2, 0.2, 0.2}, hi{0.7, 0.7, 0.7};
  (void)tree.RangeCount(lo, hi);
  const IoStats before = tree.io_stats();
  EXPECT_GT(before.page_reads, 0u);

  const std::string path = TempPath("disk_neutral.pages");
  ASSERT_TRUE(DiskRTree::Write(tree, path).ok());

  const IoStats after = tree.io_stats();
  EXPECT_EQ(after.page_reads, before.page_reads);
  EXPECT_EQ(after.page_faults, before.page_faults);
  EXPECT_EQ(after.page_writes, before.page_writes);
  std::remove(path.c_str());
}

TEST(DiskRTreeTest, MmapBackendMatchesPread) {
  auto f = DiskFixture::Make(WorkloadKind::kAnticorrelated, 8000, 3, "disk_mmap.pages");
  DiskTreeOptions mmap_options;
  mmap_options.backend = DiskBackend::kMmap;
  auto pread_tree = DiskRTree::Open(f.path);
  auto mmap_tree = DiskRTree::Open(f.path, mmap_options);
  ASSERT_TRUE(pread_tree.ok());
  ASSERT_TRUE(mmap_tree.ok()) << mmap_tree.status().ToString();
  EXPECT_EQ(mmap_tree->backend(), DiskBackend::kMmap);

  const std::vector<Coord> lo{0.1, 0.1, 0.1}, hi{0.8, 0.8, 0.8};
  EXPECT_EQ(pread_tree->RangeCount(lo, hi).value(),
            mmap_tree->RangeCount(lo, hi).value());
  const auto pread_sky = SkylineBBS(f.data, *pread_tree);
  const auto mmap_sky = SkylineBBS(f.data, *mmap_tree);
  ASSERT_TRUE(pread_sky.ok());
  ASSERT_TRUE(mmap_sky.ok());
  EXPECT_EQ(RowsDigest(pread_sky->rows), RowsDigest(mmap_sky->rows));
  EXPECT_EQ(pread_sky->rows, mmap_sky->rows);
  std::remove(f.path.c_str());
}

// Prefetch determinism: BBS over a prefetching tree emits bit-identical
// skylines (FNV digest) to the no-prefetch run, across backends and pool
// sizes — prefetch moves physical reads in time, never changes bytes.
TEST(DiskRTreeTest, PrefetchNeverChangesResults) {
  auto f = DiskFixture::Make(WorkloadKind::kAnticorrelated, 10000, 4, "disk_pf.pages");
  const auto baseline = SkylineBBS(f.data, DiskRTree::Open(f.path).value());
  ASSERT_TRUE(baseline.ok());
  const uint64_t want = RowsDigest(baseline->rows);

  for (const DiskBackend backend : {DiskBackend::kPread, DiskBackend::kMmap}) {
    for (const size_t threads : {size_t{2}, size_t{8}}) {
      ThreadPool pool(threads);
      DiskTreeOptions options;
      options.backend = backend;
      options.cache_fraction = 0.1;
      options.prefetch_pool = &pool;
      auto disk = DiskRTree::Open(f.path, options);
      ASSERT_TRUE(disk.ok());
      EXPECT_TRUE(disk->prefetch_enabled());
      const auto sky = SkylineBBS(f.data, *disk);
      ASSERT_TRUE(sky.ok()) << sky.status().ToString();
      EXPECT_EQ(RowsDigest(sky->rows), want)
          << ToString(backend) << " threads=" << threads;
      EXPECT_EQ(sky->rows, baseline->rows);
    }
  }
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, PrefetchCountsSeparatelyFromDemandFaults) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 20000, 3, "disk_pfio.pages");
  ThreadPool pool(4);
  DiskTreeOptions options;
  options.cache_fraction = 1.0;  // no eviction: every prefetch sticks
  options.prefetch_pool = &pool;
  auto disk = DiskRTree::Open(f.path, options);
  ASSERT_TRUE(disk.ok());

  // Deterministic half: demand-read only the root, prefetch its children,
  // drain the pool. Every child load is speculative, so the counters must
  // say exactly one read, one fault, and root-fanout prefetches.
  auto root = disk->ReadNode(disk->root());
  ASSERT_TRUE(root.ok());
  ASSERT_FALSE(root->node().is_leaf);
  disk->PrefetchChildren(root->node());
  pool.Wait();
  IoStats io = disk->io_stats();
  EXPECT_EQ(io.page_reads, 1u);
  EXPECT_EQ(io.page_faults, 1u);
  EXPECT_EQ(io.page_prefetches, root->node().entries.size());

  // Racy half on top: a full BBS run. Speculative reads never masquerade
  // as demand traffic — every fault is a logical read that actually
  // missed, and prefetched pages that win the race save faults rather
  // than adding them.
  const auto sky = SkylineBBS(f.data, *disk);
  ASSERT_TRUE(sky.ok());
  io = disk->io_stats();
  EXPECT_GT(io.page_reads, 1u);
  EXPECT_LE(io.page_faults, io.page_reads);
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, BbsOffDiskMatchesInMemory) {
  auto f = DiskFixture::Make(WorkloadKind::kAnticorrelated, 6000, 3, "disk_bbs.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok());
  auto disk_sky = SkylineBBS(f.data, *disk);
  ASSERT_TRUE(disk_sky.ok()) << disk_sky.status().ToString();
  EXPECT_EQ(disk_sky->rows, SkylineSFS(f.data).rows);
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, SigGenIbOffDiskMatchesInMemory) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 5000, 3, "disk_ib.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok());
  const auto skyline = SkylineSFS(f.data).rows;
  const auto family = MinHashFamily::Create(32, f.data.size(), 213);
  const auto mem = SigGenIB(f.data, skyline, family, *f.memory).value();
  const auto from_disk = SigGenIB(f.data, skyline, family, *disk).value();
  // Same traversal order (BFS over the same page ids) -> identical
  // signatures and scores.
  EXPECT_EQ(from_disk.domination_scores, mem.domination_scores);
  for (size_t j = 0; j < skyline.size(); ++j) {
    for (size_t i = 0; i < 32; ++i) {
      ASSERT_EQ(from_disk.signatures.at(j, i), mem.signatures.at(j, i))
          << "col " << j << " slot " << i;
    }
  }
  EXPECT_GT(from_disk.io.page_reads, 0u);
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, FullPipelineOffDisk) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 6000, 4, "disk_pipe.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok());
  SkyDiverConfig config;
  config.k = 5;
  auto report = SkyDiver::RunOnDisk(f.data, config, *disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(IsSkyline(f.data, report->skyline));
  EXPECT_EQ(report->selected_rows.size(), 5u);
  EXPECT_GT(report->skyline_phase.io.page_faults, 0u);      // real preads (BBS)
  EXPECT_GT(report->fingerprint_phase.io.page_reads, 0u);   // real preads (IB)
  // The selection must equal the in-memory indexed pipeline's (identical
  // page ids, identical traversals, identical hash family).
  auto mem_report = SkyDiver::Run(f.data, config, &*f.memory);
  ASSERT_TRUE(mem_report.ok());
  EXPECT_EQ(report->selected_rows, mem_report->selected_rows);
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, RejectsForeignAndCorruptFiles) {
  EXPECT_TRUE(DiskRTree::Open("/nonexistent/pages").status().IsIoError());
  const std::string path = TempPath("disk_bad.pages");
  {
    std::ofstream out(path, std::ios::binary);
    out << std::string(8192, 'x');
  }
  EXPECT_TRUE(DiskRTree::Open(path).status().IsInvalidArgument());
  std::remove(path.c_str());

  // Corrupt the header checksum of a valid file.
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 1000, 2, "disk_corrupt.pages");
  {
    std::fstream file(f.path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(16);  // inside the header fields
    const char junk = 0x7f;
    file.write(&junk, 1);
  }
  EXPECT_FALSE(DiskRTree::Open(f.path).ok());
  std::remove(f.path.c_str());
}

}  // namespace
}  // namespace skydiver
