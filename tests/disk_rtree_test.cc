// Tests for the file-backed R-tree: page serialization round trips, frame
// cache behavior on real reads, and the full index-based pipeline (BBS +
// SigGen-IB) running straight off a page file.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "datagen/generators.h"
#include "minhash/siggen.h"
#include "rtree/disk_rtree.h"
#include "rtree/rtree.h"
#include "skydiver/skydiver.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

struct DiskFixture {
  DataSet data = DataSet(1);
  std::string path;
  // Keep the in-memory tree for cross-checks.
  Result<RTree> memory = Status::Internal("unset");

  static DiskFixture Make(WorkloadKind kind, RowId n, Dim d, const std::string& name) {
    DiskFixture f;
    f.data = GenerateWorkload(kind, n, d, 211).value();
    f.path = TempPath(name);
    f.memory = RTree::BulkLoad(f.data);
    EXPECT_TRUE(DiskRTree::Write(*f.memory, f.path).ok());
    return f;
  }
};

TEST(DiskRTreeTest, OpenReadsGeometry) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 5000, 3, "disk_geom.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(disk->dims(), 3u);
  EXPECT_EQ(disk->size(), 5000u);
  EXPECT_EQ(disk->root(), f.memory->root());
  EXPECT_EQ(disk->height(), f.memory->height());
  EXPECT_EQ(disk->PageCount(), f.memory->PageCount());
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, NodesDeserializeExactly) {
  auto f = DiskFixture::Make(WorkloadKind::kClustered, 4000, 4, "disk_nodes.pages");
  auto disk = DiskRTree::Open(f.path, /*cache_fraction=*/1.0);
  ASSERT_TRUE(disk.ok());
  for (PageId id = 0; id < f.memory->PageCount(); ++id) {
    const RTreeNode& mem_node = f.memory->ReadNode(id);
    const RTreeNode& disk_node = disk->ReadNode(id);
    ASSERT_EQ(disk_node.is_leaf, mem_node.is_leaf) << "page " << id;
    ASSERT_EQ(disk_node.entries.size(), mem_node.entries.size()) << "page " << id;
    for (size_t e = 0; e < mem_node.entries.size(); ++e) {
      EXPECT_TRUE(disk_node.entries[e].mbr == mem_node.entries[e].mbr);
      EXPECT_EQ(disk_node.entries[e].child, mem_node.entries[e].child);
      EXPECT_EQ(disk_node.entries[e].count, mem_node.entries[e].count);
      EXPECT_EQ(disk_node.entries[e].row, mem_node.entries[e].row);
    }
  }
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, QueriesMatchInMemoryTree) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 8000, 3, "disk_query.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok());
  const std::vector<Coord> lo{0.1, 0.2, 0.3}, hi{0.6, 0.9, 0.7};
  EXPECT_EQ(disk->RangeCount(lo, hi), f.memory->RangeCount(lo, hi));
  auto disk_rows = disk->RangeSearch(lo, hi);
  auto mem_rows = f.memory->RangeSearch(lo, hi);
  std::sort(disk_rows.begin(), disk_rows.end());
  std::sort(mem_rows.begin(), mem_rows.end());
  EXPECT_EQ(disk_rows, mem_rows);
  for (RowId probe : {0u, 777u, 7999u}) {
    EXPECT_EQ(disk->DominatedCount(f.data.row(probe)),
              f.memory->DominatedCount(f.data.row(probe)));
  }
  EXPECT_EQ(disk->CommonDominatedCount(f.data.row(1), f.data.row(2)),
            f.memory->CommonDominatedCount(f.data.row(1), f.data.row(2)));
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, FrameCacheHitsAndColdMisses) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 20000, 2, "disk_cache.pages");
  auto disk = DiskRTree::Open(f.path, /*cache_fraction=*/0.5);
  ASSERT_TRUE(disk.ok());
  const std::vector<Coord> lo{0.4, 0.4}, hi{0.45, 0.45};
  disk->ResetIoStats();
  (void)disk->RangeCount(lo, hi);
  const uint64_t cold_faults = disk->io_stats().page_faults;
  EXPECT_GT(cold_faults, 0u);
  (void)disk->RangeCount(lo, hi);
  EXPECT_EQ(disk->io_stats().page_faults, cold_faults);  // warm: all hits
  disk->DropCache();
  (void)disk->RangeCount(lo, hi);
  EXPECT_EQ(disk->io_stats().page_faults, 2 * cold_faults);  // cold again
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, BbsOffDiskMatchesInMemory) {
  auto f = DiskFixture::Make(WorkloadKind::kAnticorrelated, 6000, 3, "disk_bbs.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok());
  auto disk_sky = SkylineBBS(f.data, *disk);
  ASSERT_TRUE(disk_sky.ok()) << disk_sky.status().ToString();
  EXPECT_EQ(disk_sky->rows, SkylineSFS(f.data).rows);
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, SigGenIbOffDiskMatchesInMemory) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 5000, 3, "disk_ib.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok());
  const auto skyline = SkylineSFS(f.data).rows;
  const auto family = MinHashFamily::Create(32, f.data.size(), 213);
  const auto mem = SigGenIB(f.data, skyline, family, *f.memory).value();
  const auto from_disk = SigGenIB(f.data, skyline, family, *disk).value();
  // Same traversal order (BFS over the same page ids) -> identical
  // signatures and scores.
  EXPECT_EQ(from_disk.domination_scores, mem.domination_scores);
  for (size_t j = 0; j < skyline.size(); ++j) {
    for (size_t i = 0; i < 32; ++i) {
      ASSERT_EQ(from_disk.signatures.at(j, i), mem.signatures.at(j, i))
          << "col " << j << " slot " << i;
    }
  }
  EXPECT_GT(from_disk.io.page_reads, 0u);
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, FullPipelineOffDisk) {
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 6000, 4, "disk_pipe.pages");
  auto disk = DiskRTree::Open(f.path);
  ASSERT_TRUE(disk.ok());
  SkyDiverConfig config;
  config.k = 5;
  auto report = SkyDiver::RunOnDisk(f.data, config, *disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(IsSkyline(f.data, report->skyline));
  EXPECT_EQ(report->selected_rows.size(), 5u);
  EXPECT_GT(report->skyline_phase.io.page_faults, 0u);      // real preads (BBS)
  EXPECT_GT(report->fingerprint_phase.io.page_reads, 0u);   // real preads (IB)
  // The selection must equal the in-memory indexed pipeline's (identical
  // page ids, identical traversals, identical hash family).
  auto mem_report = SkyDiver::Run(f.data, config, &*f.memory);
  ASSERT_TRUE(mem_report.ok());
  EXPECT_EQ(report->selected_rows, mem_report->selected_rows);
  std::remove(f.path.c_str());
}

TEST(DiskRTreeTest, RejectsForeignAndCorruptFiles) {
  EXPECT_TRUE(DiskRTree::Open("/nonexistent/pages").status().IsIoError());
  const std::string path = TempPath("disk_bad.pages");
  {
    std::ofstream out(path, std::ios::binary);
    out << std::string(8192, 'x');
  }
  EXPECT_TRUE(DiskRTree::Open(path).status().IsInvalidArgument());
  std::remove(path.c_str());

  // Corrupt the header checksum of a valid file.
  auto f = DiskFixture::Make(WorkloadKind::kIndependent, 1000, 2, "disk_corrupt.pages");
  {
    std::fstream file(f.path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(16);  // inside the header fields
    const char junk = 0x7f;
    file.write(&junk, 1);
  }
  EXPECT_FALSE(DiskRTree::Open(f.path).ok());
  std::remove(f.path.c_str());
}

}  // namespace
}  // namespace skydiver
