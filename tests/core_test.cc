// Unit tests for src/core: DataSet, Preference, dominance, GammaSets.

#include <gtest/gtest.h>

#include <vector>

#include "core/dataset.h"
#include "core/dominance.h"
#include "core/gamma.h"
#include "core/preference.h"

namespace skydiver {
namespace {

DataSet MakeToy() {
  // 2-D, minimization. Skyline: rows 0 and 1.
  // Γ(0) = {2, 4}, Γ(1) = {3, 4}.
  DataSet d(2);
  d.Append({1.0, 4.0});  // 0: skyline
  d.Append({2.0, 1.0});  // 1: skyline
  d.Append({1.5, 5.0});  // 2: dominated by 0 only (1.5 < 2.0 blocks point 1)
  d.Append({3.0, 2.0});  // 3: dominated by 1 only (2.0 < 4.0 blocks point 0)
  d.Append({4.0, 6.0});  // 4: dominated by both 0 and 1
  return d;
}

// --------------------------------------------------------------------------
// DataSet
// --------------------------------------------------------------------------

TEST(DataSetTest, AppendAndAccess) {
  DataSet d = MakeToy();
  EXPECT_EQ(d.dims(), 2u);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_FALSE(d.empty());
  EXPECT_DOUBLE_EQ(d.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.at(3, 1), 2.0);
  const auto row = d.row(4);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[1], 6.0);
}

TEST(DataSetTest, AdoptStorage) {
  DataSet d(3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.at(1, 2), 6.0);
}

TEST(DataSetTest, CanonicalizeNegatesMaxDims) {
  DataSet d(2);
  d.Append({1.0, 10.0});
  Preference pref({Pref::kMin, Pref::kMax});
  auto canonical = d.Canonicalize(pref);
  ASSERT_TRUE(canonical.ok());
  EXPECT_DOUBLE_EQ(canonical->at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(canonical->at(0, 1), -10.0);
}

TEST(DataSetTest, CanonicalizeRejectsDimMismatch) {
  DataSet d(2);
  d.Append({1.0, 2.0});
  EXPECT_TRUE(d.Canonicalize(Preference::AllMin(3)).status().IsInvalidArgument());
}

TEST(DataSetTest, ProjectKeepsPrefix) {
  DataSet d(3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  auto p = d.Project(2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->dims(), 2u);
  EXPECT_EQ(p->size(), 2u);
  EXPECT_DOUBLE_EQ(p->at(1, 1), 5.0);
  EXPECT_TRUE(d.Project(0).status().IsInvalidArgument());
  EXPECT_TRUE(d.Project(4).status().IsInvalidArgument());
  EXPECT_TRUE(d.Project(3).ok());
}

TEST(DataSetTest, ProjectDimsSubsetAndReorder) {
  DataSet d(3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  const std::vector<Dim> dims{2, 0};
  auto p = d.ProjectDims(dims);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->dims(), 2u);
  EXPECT_DOUBLE_EQ(p->at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(p->at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p->at(1, 0), 6.0);
}

TEST(DataSetTest, ProjectDimsValidation) {
  DataSet d(2, {1.0, 2.0});
  const std::vector<Dim> empty;
  EXPECT_TRUE(d.ProjectDims(empty).status().IsInvalidArgument());
  const std::vector<Dim> out_of_range{0, 5};
  EXPECT_TRUE(d.ProjectDims(out_of_range).status().IsInvalidArgument());
  const std::vector<Dim> repeated{1, 1};
  EXPECT_TRUE(d.ProjectDims(repeated).status().IsInvalidArgument());
}

TEST(DataSetTest, SelectSubset) {
  DataSet d = MakeToy();
  const std::vector<RowId> rows{4, 0};
  DataSet s = d.Select(rows);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 1.0);
}

// --------------------------------------------------------------------------
// Preference
// --------------------------------------------------------------------------

TEST(PreferenceTest, AllMinAllMax) {
  const Preference mn = Preference::AllMin(3);
  const Preference mx = Preference::AllMax(3);
  EXPECT_EQ(mn.dims(), 3u);
  for (Dim i = 0; i < 3; ++i) {
    EXPECT_EQ(mn.at(i), Pref::kMin);
    EXPECT_EQ(mx.at(i), Pref::kMax);
    EXPECT_DOUBLE_EQ(mn.Canonical(i, 5.0), 5.0);
    EXPECT_DOUBLE_EQ(mx.Canonical(i, 5.0), -5.0);
  }
}

// --------------------------------------------------------------------------
// Dominance
// --------------------------------------------------------------------------

TEST(DominanceTest, StrictDominance) {
  const std::vector<Coord> a{1.0, 2.0};
  const std::vector<Coord> b{1.0, 3.0};
  const std::vector<Coord> c{2.0, 1.0};
  EXPECT_TRUE(Dominates(a, b));   // better on dim 1, equal on dim 0
  EXPECT_FALSE(Dominates(b, a));
  EXPECT_FALSE(Dominates(a, c));  // incomparable
  EXPECT_FALSE(Dominates(c, a));
  EXPECT_FALSE(Dominates(a, a));  // never dominates itself
}

TEST(DominanceTest, WeakDominance) {
  const std::vector<Coord> a{1.0, 2.0};
  const std::vector<Coord> b{1.0, 3.0};
  EXPECT_TRUE(WeaklyDominates(a, a));  // reflexive
  EXPECT_TRUE(WeaklyDominates(a, b));
  EXPECT_FALSE(WeaklyDominates(b, a));
}

TEST(DominanceTest, ThreeWayCompare) {
  const std::vector<Coord> a{1.0, 2.0};
  const std::vector<Coord> b{2.0, 3.0};
  const std::vector<Coord> c{0.0, 9.0};
  EXPECT_EQ(Compare(a, b), DomRelation::kDominates);
  EXPECT_EQ(Compare(b, a), DomRelation::kDominatedBy);
  EXPECT_EQ(Compare(a, c), DomRelation::kIncomparable);
  EXPECT_EQ(Compare(a, a), DomRelation::kIncomparable);  // equal points
}

TEST(DominanceTest, CounterIncrements) {
  DominanceCounter::Reset();
  const std::vector<Coord> a{1.0}, b{2.0};
  (void)Dominates(a, b);
  (void)WeaklyDominates(a, b);
  (void)Compare(a, b);
  EXPECT_EQ(DominanceCounter::Count(), 3u);
}

// --------------------------------------------------------------------------
// GammaSets
// --------------------------------------------------------------------------

TEST(GammaSetsTest, ComputesDominatedSets) {
  DataSet d = MakeToy();
  const std::vector<RowId> skyline{0, 1};
  const GammaSets g = GammaSets::Compute(d, skyline);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.universe_size(), 5u);
  // Γ(0) = {2, 4}; Γ(1) = {3, 4}.
  EXPECT_EQ(g.DominationScore(0), 2u);
  EXPECT_EQ(g.DominationScore(1), 2u);
  EXPECT_TRUE(g.gamma(0).Test(2));
  EXPECT_TRUE(g.gamma(0).Test(4));
  EXPECT_FALSE(g.gamma(0).Test(3));
  EXPECT_TRUE(g.gamma(1).Test(3));
  EXPECT_TRUE(g.gamma(1).Test(4));
}

TEST(GammaSetsTest, JaccardOfToy) {
  DataSet d = MakeToy();
  const GammaSets g = GammaSets::Compute(d, {0, 1});
  // intersection {4}, union {2,3,4} -> Js = 1/3.
  EXPECT_DOUBLE_EQ(g.JaccardSimilarity(0, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.JaccardDistance(0, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.JaccardSimilarity(0, 0), 1.0);  // self-similarity
}

TEST(GammaSetsTest, EmptyGammasAreIdentical) {
  // Two skyline points dominating nothing: Jaccard similarity defined as 1.
  DataSet d(2);
  d.Append({0.0, 1.0});
  d.Append({1.0, 0.0});
  const GammaSets g = GammaSets::Compute(d, {0, 1});
  EXPECT_EQ(g.DominationScore(0), 0u);
  EXPECT_DOUBLE_EQ(g.JaccardSimilarity(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.JaccardDistance(0, 1), 0.0);
}

TEST(GammaSetsTest, MaxDominationIndex) {
  DataSet d = MakeToy();
  d.Append({1.5, 4.5});  // row 5, dominated only by 0 -> Γ(0) grows to 3
  const GammaSets g = GammaSets::Compute(d, {0, 1});
  EXPECT_EQ(g.MaxDominationIndex(), 0u);
}

TEST(GammaSetsTest, CoverageFractions) {
  DataSet d = MakeToy();
  const GammaSets g = GammaSets::Compute(d, {0, 1});
  // Non-skyline points: 3 (rows 2,3,4). Γ(0) covers {2,4}.
  EXPECT_DOUBLE_EQ(g.Coverage({0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.Coverage({0, 1}), 1.0);
}

TEST(GammaSetsTest, MatrixSparsity) {
  DataSet d = MakeToy();
  const GammaSets g = GammaSets::Compute(d, {0, 1});
  // Domination matrix: 3 non-skyline rows x 2 columns, 4 ones -> 1/3 zeros.
  EXPECT_NEAR(g.MatrixSparsity(), 1.0 - 4.0 / 6.0, 1e-12);
}

TEST(GammaSetsTest, DuplicatePointsAllOnSkylineWithEmptyGamma) {
  DataSet d(2);
  d.Append({1.0, 1.0});
  d.Append({1.0, 1.0});  // duplicate: neither dominates the other
  const GammaSets g = GammaSets::Compute(d, {0, 1});
  EXPECT_EQ(g.DominationScore(0), 0u);
  EXPECT_EQ(g.DominationScore(1), 0u);
}

}  // namespace
}  // namespace skydiver
