// Property-based tests: randomized sweeps over seeds/workloads asserting
// the structural invariants the paper's theory relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/dominance.h"
#include "core/gamma.h"
#include "datagen/generators.h"
#include "diversify/brute_force.h"
#include "diversify/dispersion.h"
#include "lsh/lsh.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

// --------------------------------------------------------------------------
// Dominance is a strict partial order.
// --------------------------------------------------------------------------

class DominanceOrderTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DominanceOrderTest, StrictPartialOrderAxioms) {
  Rng rng(GetParam());
  const Dim d = 2 + static_cast<Dim>(rng.NextBounded(4));
  const int n = 30;
  std::vector<std::vector<Coord>> pts(n, std::vector<Coord>(d));
  for (auto& p : pts) {
    for (auto& v : p) v = std::floor(rng.NextDouble() * 4.0);  // many ties
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_FALSE(Dominates(pts[static_cast<size_t>(i)], pts[static_cast<size_t>(i)]))
        << "irreflexivity";
    for (int j = 0; j < n; ++j) {
      const bool ij = Dominates(pts[static_cast<size_t>(i)], pts[static_cast<size_t>(j)]);
      const bool ji = Dominates(pts[static_cast<size_t>(j)], pts[static_cast<size_t>(i)]);
      EXPECT_FALSE(ij && ji) << "asymmetry";
      if (!ij) continue;
      for (int l = 0; l < n; ++l) {
        if (Dominates(pts[static_cast<size_t>(j)], pts[static_cast<size_t>(l)])) {
          EXPECT_TRUE(Dominates(pts[static_cast<size_t>(i)], pts[static_cast<size_t>(l)]))
              << "transitivity";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceOrderTest, testing::Range<uint64_t>(1, 9));

// --------------------------------------------------------------------------
// Exact Jaccard distance is a metric on dominated sets.
// --------------------------------------------------------------------------

class JaccardMetricTest : public testing::TestWithParam<uint64_t> {};

TEST_P(JaccardMetricTest, MetricAxiomsHold) {
  const DataSet data = GenerateIndependent(600, 3, GetParam());
  const auto skyline = SkylineSFS(data).rows;
  const GammaSets g = GammaSets::Compute(data, skyline);
  const size_t m = std::min<size_t>(g.size(), 15);
  for (size_t a = 0; a < m; ++a) {
    EXPECT_DOUBLE_EQ(g.JaccardDistance(a, a), 0.0);
    for (size_t b = 0; b < m; ++b) {
      const double dab = g.JaccardDistance(a, b);
      EXPECT_GE(dab, 0.0);
      EXPECT_LE(dab, 1.0);
      EXPECT_DOUBLE_EQ(dab, g.JaccardDistance(b, a));  // symmetry
      for (size_t c = 0; c < m; ++c) {
        EXPECT_LE(dab, g.JaccardDistance(a, c) + g.JaccardDistance(c, b) + 1e-12)
            << "triangle inequality";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JaccardMetricTest, testing::Range<uint64_t>(100, 105));

// --------------------------------------------------------------------------
// Estimated (signature) Jaccard distance is a metric too (paper Lemma 3).
// --------------------------------------------------------------------------

class SignatureMetricTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SignatureMetricTest, TriangleInequalityOnSignatures) {
  const DataSet data = GenerateAnticorrelated(800, 3, GetParam());
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(64, data.size(), GetParam() * 7 + 1);
  auto sig = SigGenIF(data, skyline, family);
  ASSERT_TRUE(sig.ok());
  const size_t m = std::min<size_t>(skyline.size(), 12);
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) {
      const double dab = sig->signatures.EstimatedDistance(a, b);
      EXPECT_DOUBLE_EQ(dab, sig->signatures.EstimatedDistance(b, a));
      for (size_t c = 0; c < m; ++c) {
        EXPECT_LE(dab, sig->signatures.EstimatedDistance(a, c) +
                           sig->signatures.EstimatedDistance(c, b) + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureMetricTest, testing::Range<uint64_t>(200, 204));

// --------------------------------------------------------------------------
// Greedy 2-approximation holds across random metric instances (Lemma 4).
// --------------------------------------------------------------------------

class GreedyApproxSweepTest
    : public testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(GreedyApproxSweepTest, WithinFactorTwoOfBruteForce) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  const size_t m = 10 + rng.NextBounded(5);
  if (k > m) GTEST_SKIP();
  const Dim d = 3;
  std::vector<double> coords(m * d);
  for (auto& v : coords) v = rng.NextDouble();
  auto dist = [&](size_t a, size_t b) {
    double s = 0.0;
    for (Dim i = 0; i < d; ++i) {
      const double diff = coords[a * d + i] - coords[b * d + i];
      s += diff * diff;
    }
    return std::sqrt(s);
  };
  auto opt = BruteForceMaxMin(m, k, dist);
  ASSERT_TRUE(opt.ok());
  // Sweep all seeds points (not just max-score): the guarantee holds for
  // any greedy start per Ravi et al.; we check our max-score start.
  auto greedy = SelectDiverseSet(m, k, dist, [](size_t) { return 0.0; });
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(greedy->min_pairwise * 2.0 + 1e-12, opt->min_pairwise);
}

INSTANTIATE_TEST_SUITE_P(SeedAndK, GreedyApproxSweepTest,
                         testing::Combine(testing::Range<uint64_t>(1, 11),
                                          testing::Values<size_t>(2, 3, 5)));

// --------------------------------------------------------------------------
// MinHash collision probability equals Jaccard similarity (slot-level).
// --------------------------------------------------------------------------

TEST(MinHashPropertyTest, SlotAgreementFrequencyMatchesJaccard) {
  // One pair of sets, many independent hash functions; the empirical
  // agreement rate over t = 2000 slots must approach Js.
  const uint64_t universe = 1000;
  const size_t t = 2000;
  const auto family = MinHashFamily::Create(t, universe, 9);
  SignatureMatrix sig(t, 2);
  // A = multiples of 2, B = multiples of 3 in [0, 1000).
  size_t inter = 0, uni = 0;
  for (uint64_t x = 0; x < universe; ++x) {
    const bool in_a = (x % 2 == 0), in_b = (x % 3 == 0);
    if (in_a || in_b) ++uni;
    if (in_a && in_b) ++inter;
    for (size_t i = 0; i < t; ++i) {
      const uint64_t h = family.Apply(i, x);
      if (in_a) sig.UpdateMin(0, i, h);
      if (in_b) sig.UpdateMin(1, i, h);
    }
  }
  const double true_js = static_cast<double>(inter) / static_cast<double>(uni);
  EXPECT_NEAR(sig.EstimatedSimilarity(0, 1), true_js, 0.03);
}

// --------------------------------------------------------------------------
// LSH collision frequency matches the banding formula.
// --------------------------------------------------------------------------

TEST(LshPropertyTest, EmpiricalCollisionRateTracksFormula) {
  // Construct signature pairs with a controlled slot-agreement rate s and
  // measure how often at least one zone collides.
  const size_t t = 100;
  LshParams params = ChooseZones(t, 0.3, 1 << 20).value();  // huge B: no false hits
  Rng rng(77);
  for (double s : {0.2, 0.5, 0.8}) {
    int collisions = 0;
    const int trials = 400;
    for (int trial = 0; trial < trials; ++trial) {
      SignatureMatrix sig(t, 2);
      for (size_t i = 0; i < t; ++i) {
        const uint64_t v = rng.Next() >> 16;
        sig.UpdateMin(0, i, v);
        sig.UpdateMin(1, i, rng.NextDouble() < s ? v : (rng.Next() >> 16));
      }
      auto index = LshIndex::Build(sig, params, rng.Next());
      ASSERT_TRUE(index.ok());
      bool collided = false;
      for (size_t z = 0; z < params.zones; ++z) {
        if (index->Bucket(0, z) == index->Bucket(1, z)) {
          collided = true;
          break;
        }
      }
      collisions += collided;
    }
    const double expected = params.CollisionProbability(s);
    EXPECT_NEAR(collisions / static_cast<double>(trials), expected, 0.09)
        << "s = " << s;
  }
}

// --------------------------------------------------------------------------
// R-tree range counting agrees with brute force across random workloads.
// --------------------------------------------------------------------------

class RTreeSweepTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RTreeSweepTest, GammaViaIndexEqualsGammaViaScan) {
  const auto kind = GetParam() % 2 == 0 ? WorkloadKind::kIndependent
                                        : WorkloadKind::kRecipesLike;
  const auto data = GenerateWorkload(kind, 1200, 3, GetParam()).value();
  const auto skyline = SkylineSFS(data).rows;
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  const size_t m = std::min<size_t>(skyline.size(), 10);
  for (size_t j = 0; j < m; ++j) {
    EXPECT_EQ(tree->DominatedCount(data.row(skyline[j])), gammas.DominationScore(j));
  }
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      const uint64_t inter =
          tree->CommonDominatedCount(data.row(skyline[a]), data.row(skyline[b]));
      EXPECT_EQ(inter, gammas.gamma(a).AndCount(gammas.gamma(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeSweepTest, testing::Range<uint64_t>(300, 308));

// --------------------------------------------------------------------------
// Sparsity of the domination matrix grows with dimensionality (§3.2).
// --------------------------------------------------------------------------

TEST(SparsityPropertyTest, MatrixSparsityIncreasesWithDims) {
  double prev = 0.0;
  for (Dim d : {3u, 5u, 7u}) {
    const DataSet data = GenerateIndependent(10000, d, 55);
    const auto skyline = SkylineSFS(data).rows;
    const GammaSets gammas = GammaSets::Compute(data, skyline);
    const double sparsity = gammas.MatrixSparsity();
    EXPECT_GT(sparsity, prev) << "d = " << d;
    prev = sparsity;
  }
  // The paper quotes ~45% at 3d, ~84% at 5d, ~97% at 7d for 10K uniform.
}

}  // namespace
}  // namespace skydiver
