namespace demo {

int Answer();

}  // namespace demo
