// Golden-bad fixture for the lock-discipline rule: hand-balanced
// Lock()/Unlock() calls instead of a RAII guard — an early return between
// them would leak the lock. (Wrapper type names on purpose: the fixture
// isolates the naked-call check from the raw-primitive check.)

namespace demo {

struct Mutex {
  void Lock();
  void Unlock();
};

int Withdraw(Mutex& mu, int amount, int balance) {
  mu.Lock();
  const int next = balance - amount;
  mu.Unlock();
  return next;
}

}  // namespace demo
