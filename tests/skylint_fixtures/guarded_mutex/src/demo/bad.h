// Golden-bad fixture for the guarded-mutex rule: both the raw std::mutex
// member (invisible to thread-safety analysis) and the unannotated mutable
// member (no GUARDED_BY, not a sync primitive) must fire.
#pragma once

#include <cstddef>
#include <mutex>

namespace demo {

class BadCache {
 public:
  size_t hits() const;

 private:
  std::mutex mu_;
  mutable size_t hits_ = 0;
};

}  // namespace demo
