// Negative fixture: skylint:allow-file(...) suppression. The naked
// Lock()/Unlock() pair below would fire lock-discipline on two lines; the
// single file-level tag silences the whole file, so this tree must lint
// clean.
//
// skylint:allow-file(lock-discipline): fixture exercising file-level suppression

namespace demo {

struct Mutex {
  void Lock();
  void Unlock();
};

int Withdraw(Mutex& mu, int amount, int balance) {
  mu.Lock();
  const int next = balance - amount;
  mu.Unlock();
  return next;
}

}  // namespace demo
