// Golden-bad fixture for the relaxed-ordering rule: a memory_order_relaxed
// site with no skylint:allow tag citing the protocol that carries the
// ordering the atomic gives up.

#include <atomic>
#include <cstdint>

namespace demo {

std::atomic<uint64_t> g_events{0};

void Record() { g_events.fetch_add(1, std::memory_order_relaxed); }

}  // namespace demo
