// Golden-bad fixture for the thread-id-reduction rule: a parallel reduction
// that indexes its accumulator by the worker's thread identity. Which
// thread runs which rows is a scheduling accident, so the partials land in
// nondeterministic slots and any ordered fold over them changes between
// runs. Deterministic reductions index by morsel/claim id instead
// (parallel/morsel.h).

#include <pthread.h>

#include <array>
#include <cstddef>
#include <cstdint>

namespace demo {

std::array<uint64_t, 64> g_partials{};

void Accumulate(uint64_t rows) {
  const size_t slot = static_cast<size_t>(pthread_self()) % g_partials.size();
  g_partials[slot] += rows;
}

}  // namespace demo
