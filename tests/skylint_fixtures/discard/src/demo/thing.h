#pragma once

namespace demo {

class Status {};

Status Flush();

}  // namespace demo
