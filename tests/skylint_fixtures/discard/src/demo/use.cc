#include "demo/thing.h"

namespace demo {

void Run() {
  Flush();
}

}  // namespace demo
