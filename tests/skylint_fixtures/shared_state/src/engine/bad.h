// Golden-bad fixture for the shared-state rule: engine-layer objects are
// shared const across query threads, so both of these are data races.
#pragma once

#include <cstddef>

namespace skydiver {

// Mutable namespace-scope static: every query thread sees it, nobody owns it.
static size_t g_query_counter;

class BadSnapshot {
 public:
  size_t hits() const { return ++hits_; }

 private:
  // Non-atomic mutable member mutated through a const reference.
  mutable size_t hits_ = 0;
};

}  // namespace skydiver
