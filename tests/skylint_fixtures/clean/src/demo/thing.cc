#include "demo/thing.h"

namespace demo {

int Answer() {
  return 42;
}

}  // namespace demo
