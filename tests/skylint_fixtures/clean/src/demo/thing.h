#pragma once

namespace demo {

int Answer();

}  // namespace demo
