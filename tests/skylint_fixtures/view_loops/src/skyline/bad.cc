namespace demo {

struct DataSet {
  unsigned dims() const { return 4; }
};

int SumDims(const DataSet& data) {
  int total = 0;
  for (unsigned d = 0; d < data.dims(); ++d) total += static_cast<int>(d);
  return total;
}

}  // namespace demo
