#pragma once

#include "engine/planner.h"

namespace demo {

int Answer();

}  // namespace demo
