// Negative fixture: per-line skylint:allow(...) suppression. Both relaxed
// sites would fire without their tags — one tagged on the finding's own
// line, one tagged in the comment directly above — so this tree must lint
// clean.

#include <atomic>
#include <cstdint>

namespace demo {

std::atomic<uint64_t> g_events{0};

uint64_t Drain() {
  // skylint:allow(relaxed-ordering): counter is monotonic telemetry; no
  // other state is published through it, so ordering is not needed.
  return g_events.exchange(0, std::memory_order_relaxed);
}

void Record() {
  g_events.fetch_add(1, std::memory_order_relaxed);  // skylint:allow(relaxed-ordering): telemetry only
}

}  // namespace demo
