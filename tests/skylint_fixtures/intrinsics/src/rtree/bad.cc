// Fixture: vendor intrinsics header included outside src/kernels/. Vector
// code must stay behind the DomKernel dispatch so only the kernel layer
// carries per-ISA compile flags.
#include <immintrin.h>

namespace demo {

double SumLanes(const double* p) {
  const __m256d v = _mm256_loadu_pd(p);
  double out[4];
  _mm256_storeu_pd(out, v);
  return out[0] + out[1] + out[2] + out[3];
}

}  // namespace demo
