// Clean fixture: a miniature of the morsel scheduler (parallel/morsel.h)
// exercising the idioms the concurrency rules must accept — an annotated
// capability class whose claim counter is a deliberately unguarded relaxed
// atomic (allow-tagged, citing the protocol that carries the ordering)
// next to Mutex-guarded observational counters, with reduction slots
// indexed by claim id rather than thread identity.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace demo {

class SKYDIVER_CAPABILITY("mutex") MiniMorselQueue {
 public:
  struct Claim {
    size_t slot = 0;
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  MiniMorselQueue(uint64_t n, uint64_t claim_rows);

  // Claims the next row range; the slot is a pure function of the range
  // (begin / claim_rows), never of the calling thread.
  bool Next(Claim* out);

  size_t slots() const { return slots_; }

  uint64_t claims_granted() const {
    skydiver::MutexLock lock(mutex_);
    return claims_granted_;
  }

 private:
  uint64_t n_ = 0;
  uint64_t claim_rows_ = 1;
  size_t slots_ = 0;

  // Deliberately NOT guarded: atomicity is all the claim counter needs
  // (fetch_add uniqueness hands each claim exclusive rows and an exclusive
  // reduction slot); the mutex below guards only the observational counter.
  std::atomic<uint64_t> next_claim_{0};

  mutable skydiver::Mutex mutex_;
  uint64_t claims_granted_ SKYDIVER_GUARDED_BY(mutex_) = 0;
};

}  // namespace demo
