#include "parallel/mini_morsel.h"

#include <algorithm>

namespace demo {

MiniMorselQueue::MiniMorselQueue(uint64_t n, uint64_t claim_rows)
    : n_(n), claim_rows_(claim_rows == 0 ? 1 : claim_rows) {
  slots_ = n == 0 ? 0 : static_cast<size_t>((n + claim_rows_ - 1) / claim_rows_);
}

bool MiniMorselQueue::Next(Claim* out) {
  // skylint:allow(relaxed-ordering): atomicity-only claim counter. The
  // fetch_add's uniqueness gives this claim exclusive rows and an exclusive
  // reduction slot; the ordering edge that publishes slot contents to the
  // reducing caller is carried by the pool's mutex via Wait(), the same
  // protocol as the documented dominance-check harvest.
  const uint64_t claim = next_claim_.fetch_add(1, std::memory_order_relaxed);
  if (claim >= slots_) return false;
  out->slot = static_cast<size_t>(claim);
  out->begin = claim * claim_rows_;
  out->end = std::min<uint64_t>(n_, out->begin + claim_rows_);
  {
    skydiver::MutexLock lock(mutex_);
    ++claims_granted_;
  }
  return true;
}

}  // namespace demo
