// Golden-bad fixture for the pin-discipline rule: a node reference bound
// straight to ReadNode(). Against the disk backend the pinned PageRef the
// call returns is a temporary — its pin drops at the semicolon, leaving
// `node` dangling into an evictable page-cache frame (the exact
// use-after-evict PR 10's pinned cache exists to prevent). The sanctioned
// shape names the ref first: decltype(auto) ref = tree.ReadNode(id); then
// borrows the node via NodeOf(ref).

namespace demo {

struct RTreeNode {
  bool is_leaf = false;
};

struct Tree {
  const RTreeNode& ReadNode(int id) const;
};

bool IsLeaf(const Tree& tree, int id) {
  const RTreeNode& node = tree.ReadNode(id);
  return node.is_leaf;
}

}  // namespace demo
