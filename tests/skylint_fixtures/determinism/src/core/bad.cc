#include <random>

namespace demo {

int Draw() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

}  // namespace demo
