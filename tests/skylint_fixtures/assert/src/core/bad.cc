#include <cassert>

namespace demo {

void Check(int x) {
  assert(x > 0);
}

}  // namespace demo
