// Serving-layer tests: the Runtime pool-sharing contract (the ExecContext
// lazy-pool race regression), snapshot build/adopt validation, BandingSeed
// determinism, SkyServer cache accounting, and — the load-bearing part —
// concurrent parity: the same query schedule answered from 1 and from 8
// client threads against one shared snapshot returns bit-identical
// results. This suite also runs in the TSan CI lane, which is what turns
// "bit-identical" from an assertion into a freedom-from-data-races proof.

#include <gtest/gtest.h>

#include <vector>

#include "datagen/generators.h"
#include "engine/runtime.h"
#include "engine/snapshot.h"
#include "parallel/thread_pool.h"
#include "serve/serve.h"
#include "skydiver/session.h"
#include "stream/streaming.h"

namespace skydiver {
namespace {

std::shared_ptr<const SkySnapshot> BuildSnapshot(const DataSet& data, size_t t,
                                                 uint64_t seed) {
  SkyDiverConfig config;
  config.signature_size = t;
  config.seed = seed;
  auto snapshot = SkySnapshot::Build(data, config);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return snapshot.value();
}

// A mixed MH / LSH / varying-k schedule with deliberate repeats (cache
// exercise) spanning both distance families.
std::vector<QuerySpec> MixedSchedule() {
  std::vector<QuerySpec> schedule;
  auto mh = [](size_t k) {
    QuerySpec s;
    s.mode = SelectMode::kMinHash;
    s.k = k;
    return s;
  };
  auto lsh = [](size_t k, double threshold, size_t buckets) {
    QuerySpec s;
    s.mode = SelectMode::kLsh;
    s.k = k;
    s.lsh_threshold = threshold;
    s.lsh_buckets = buckets;
    return s;
  };
  for (int round = 0; round < 4; ++round) {
    schedule.push_back(mh(3));
    schedule.push_back(mh(8));
    schedule.push_back(lsh(5, 0.2, 20));
    schedule.push_back(lsh(5, 0.5, 20));
    schedule.push_back(lsh(9, 0.2, 20));  // same banding as (5, 0.2, 20)
    schedule.push_back(mh(3));            // immediate repeat
    schedule.push_back(lsh(5, 0.2, 16));
  }
  return schedule;
}

void ExpectSameResult(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.objective, b.objective);  // bitwise: same code path, same bits
  EXPECT_EQ(a.lsh_memory_bytes, b.lsh_memory_bytes);
}

// ---------------------------------------------------------------------------
// Runtime (the ExecContext::pool() lazy-creation race, fixed by eagerness)

TEST(RuntimeTest, PoolIsEagerAndSharedAcrossConcurrentReaders) {
  const auto runtime = Runtime::Create(2);
  ASSERT_NE(runtime->pool(), nullptr);
  ThreadPool* expected = runtime->pool();

  // Hammer pool() from many concurrent readers. Pre-fix, the first two
  // callers would race on lazy construction; now every reader must observe
  // the one pool constructed before the Runtime was published. TSan
  // certifies the absence of the old race.
  constexpr size_t kReaders = 16;
  std::vector<ThreadPool*> seen(kReaders, nullptr);
  {
    ThreadPool readers(8);
    for (size_t i = 0; i < kReaders; ++i) {
      ASSERT_TRUE(readers.Submit([&runtime, &seen, i] { seen[i] = runtime->pool(); }));
    }
    readers.Wait();
  }
  for (ThreadPool* p : seen) EXPECT_EQ(p, expected);
}

TEST(RuntimeTest, SerialRuntimeHasNoPool) {
  const auto runtime = Runtime::Create(0);
  EXPECT_EQ(runtime->pool(), nullptr);
  EXPECT_EQ(runtime->threads(), 0u);
}

// ---------------------------------------------------------------------------
// Snapshot build / adopt validation

TEST(SnapshotTest, BuildMatchesSessionFingerprints) {
  const DataSet data = GenerateIndependent(2000, 3, 17);
  const auto snapshot = BuildSnapshot(data, 32, 7);
  const auto session = SkyDiverSession::Create(data, 32, 7).value();
  EXPECT_EQ(snapshot->skyline(), session.skyline());
  EXPECT_EQ(snapshot->domination_scores(), session.domination_scores());
  EXPECT_TRUE(snapshot->frozen());
  EXPECT_EQ(snapshot->skyline_tiles().size(), snapshot->skyline().size());
  EXPECT_TRUE(snapshot->skyline_tiles().frozen());
}

TEST(SnapshotTest, AdoptRejectsStructurallyBrokenInputs) {
  const DataSet data = GenerateIndependent(500, 3, 23);
  const auto good = BuildSnapshot(data, 16, 5);
  const size_t m = good->skyline().size();

  // Score count mismatch.
  auto scores = good->domination_scores();
  scores.pop_back();
  EXPECT_FALSE(SkySnapshot::Adopt(good->skyline(), scores, good->signatures(), 5).ok());

  // Non-ascending rows.
  auto rows = good->skyline();
  ASSERT_GE(m, 2u);
  std::swap(rows.front(), rows.back());
  EXPECT_FALSE(SkySnapshot::Adopt(rows, good->domination_scores(), good->signatures(), 5)
                   .ok());

  // Empty skyline.
  EXPECT_FALSE(SkySnapshot::Adopt({}, {}, SignatureMatrix(16, 0), 5).ok());

  // Row out of range for the supplied dataset.
  rows = good->skyline();
  rows.back() = data.size() + 100;
  EXPECT_FALSE(SkySnapshot::Adopt(rows, good->domination_scores(), good->signatures(), 5,
                                  &data)
                   .ok());
}

TEST(SnapshotTest, SelectValidatesK) {
  const DataSet data = GenerateIndependent(500, 3, 29);
  const auto snapshot = BuildSnapshot(data, 16, 5);
  QueryContext ctx(Runtime::Create(0), CostModel{}, 0);
  QuerySpec spec;
  spec.k = 0;
  EXPECT_FALSE(snapshot->Select(spec, ctx).ok());
  spec.k = snapshot->skyline().size() + 1;
  EXPECT_FALSE(snapshot->Select(spec, ctx).ok());
}

// ---------------------------------------------------------------------------
// BandingSeed: the deterministic per-query seed derivation (satellite of
// the session SelectLsh determinism rule)

TEST(BandingSeedTest, DeterministicAndSensitiveToEveryKnob) {
  QuerySpec lsh;
  lsh.mode = SelectMode::kLsh;
  lsh.k = 5;
  lsh.lsh_threshold = 0.2;
  lsh.lsh_buckets = 20;

  EXPECT_EQ(BandingSeed(42, lsh), BandingSeed(42, lsh));

  QuerySpec other = lsh;
  other.k = 6;
  EXPECT_NE(BandingSeed(42, lsh), BandingSeed(42, other));
  other = lsh;
  other.lsh_threshold = 0.5;
  EXPECT_NE(BandingSeed(42, lsh), BandingSeed(42, other));
  other = lsh;
  other.lsh_buckets = 16;
  EXPECT_NE(BandingSeed(42, lsh), BandingSeed(42, other));
  EXPECT_NE(BandingSeed(42, lsh), BandingSeed(43, lsh));
}

TEST(BandingSeedTest, NonLshSpecsNormalizeAwayTheLshKnobs) {
  QuerySpec a;
  a.mode = SelectMode::kMinHash;
  a.k = 5;
  a.lsh_threshold = 0.2;
  QuerySpec b = a;
  b.lsh_threshold = 0.9;  // meaningless under kMinHash
  b.lsh_buckets = 123;
  EXPECT_EQ(BandingSeed(42, a), BandingSeed(42, b));
}

TEST(SessionTest, SelectLshIsDeterministicPerArgumentTuple) {
  const DataSet data = GenerateIndependent(1500, 3, 11);
  const auto session = SkyDiverSession::Create(data, 32, 9).value();
  const auto first = session.SelectLsh(5, 0.2, 20).value();
  const auto again = session.SelectLsh(5, 0.2, 20).value();
  EXPECT_EQ(first, again);
  // Different k draws an independent banding — the first 5 picks need not
  // be a prefix-equal rerun, but determinism per tuple still holds.
  const auto k7 = session.SelectLsh(7, 0.2, 20).value();
  EXPECT_EQ(k7, session.SelectLsh(7, 0.2, 20).value());
}

// ---------------------------------------------------------------------------
// Concurrent parity: many clients, one snapshot, bit-identical answers

TEST(ServeTest, ConcurrentClientsMatchSerialBitForBit) {
  const DataSet data = GenerateIndependent(4000, 3, 31);
  const auto snapshot = BuildSnapshot(data, 32, 13);
  const auto schedule = MixedSchedule();

  // Serial reference: every slot answered directly, no server, no cache.
  std::vector<QueryResult> reference;
  reference.reserve(schedule.size());
  for (const QuerySpec& spec : schedule) {
    QueryContext ctx(Runtime::Create(0), CostModel{},
                     BandingSeed(snapshot->seed(), spec));
    reference.push_back(snapshot->Select(spec, ctx).value());
  }

  for (const size_t clients : {size_t{1}, size_t{8}}) {
    SkyServer server(snapshot);  // caching on: hits must also be identical
    const auto report = ServeLoop(server, schedule, clients);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_EQ(report->results.size(), schedule.size());
    for (size_t i = 0; i < schedule.size(); ++i) {
      ASSERT_NE(report->results[i], nullptr);
      ExpectSameResult(*report->results[i], reference[i]);
    }
    EXPECT_EQ(report->stats.queries, schedule.size());
  }

  // And with the result cache disabled: every query recomputes, results
  // still identical across 8 racing clients.
  ServeOptions uncached;
  uncached.result_cache_capacity = 0;
  SkyServer server(snapshot, uncached);
  const auto report = ServeLoop(server, schedule, 8);
  ASSERT_TRUE(report.ok());
  for (size_t i = 0; i < schedule.size(); ++i) {
    ExpectSameResult(*report->results[i], reference[i]);
  }
  EXPECT_EQ(report->stats.result_hits, 0u);
  EXPECT_EQ(report->stats.result_misses, schedule.size());
}

TEST(ServeTest, ServerAnswersMatchSessionQueries) {
  const DataSet data = GenerateIndependent(2500, 4, 37);
  const auto session = SkyDiverSession::Create(data, 32, 21).value();
  SkyServer server(session.snapshot());

  QuerySpec mh;
  mh.mode = SelectMode::kMinHash;
  mh.k = 7;
  EXPECT_EQ(server.Query(mh).value()->rows, session.SelectMinHash(7).value());

  QuerySpec lsh;
  lsh.mode = SelectMode::kLsh;
  lsh.k = 7;
  lsh.lsh_threshold = 0.3;
  lsh.lsh_buckets = 24;
  EXPECT_EQ(server.Query(lsh).value()->rows, session.SelectLsh(7, 0.3, 24).value());
}

TEST(ServeTest, LoopPropagatesQueryFailures) {
  const DataSet data = GenerateIndependent(500, 3, 41);
  SkyServer server(BuildSnapshot(data, 16, 3));
  QuerySpec bad;
  bad.k = 1u << 20;  // exceeds any skyline
  const std::vector<QuerySpec> schedule{bad};
  EXPECT_FALSE(ServeLoop(server, schedule, 2).ok());
  EXPECT_FALSE(ServeLoop(server, schedule, 0).ok());  // zero clients rejected
}

// ---------------------------------------------------------------------------
// Cache accounting

TEST(ServeTest, ResultAndPlanCacheAccounting) {
  const DataSet data = GenerateIndependent(1500, 3, 43);
  SkyServer server(BuildSnapshot(data, 32, 5));

  QuerySpec mh;
  mh.mode = SelectMode::kMinHash;
  mh.k = 4;
  ASSERT_TRUE(server.Query(mh).ok());  // plan miss, result miss
  ASSERT_TRUE(server.Query(mh).ok());  // result hit (plan cache not consulted)

  QuerySpec lsh;
  lsh.mode = SelectMode::kLsh;
  lsh.k = 4;
  lsh.lsh_threshold = 0.2;
  lsh.lsh_buckets = 20;
  ASSERT_TRUE(server.Query(lsh).ok());  // plan miss, result miss

  QuerySpec lsh_other_k = lsh;
  lsh_other_k.k = 6;
  ASSERT_TRUE(server.Query(lsh_other_k).ok());  // plan HIT (same ξ, B), result miss

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.result_misses, 3u);
  EXPECT_EQ(stats.plan_hits, 1u);
  EXPECT_EQ(stats.plan_misses, 2u);  // one MH resolution, one LSH resolution
}

TEST(ServeTest, NormalizedSpecsShareOneResultCacheEntry) {
  const DataSet data = GenerateIndependent(1000, 3, 47);
  SkyServer server(BuildSnapshot(data, 16, 5));
  QuerySpec a;
  a.mode = SelectMode::kMinHash;
  a.k = 4;
  a.lsh_threshold = 0.2;
  QuerySpec b = a;
  b.lsh_threshold = 0.7;  // dead knob under kMinHash
  ASSERT_TRUE(server.Query(a).ok());
  ASSERT_TRUE(server.Query(b).ok());
  EXPECT_EQ(server.stats().result_hits, 1u);
}

TEST(ServeTest, FifoEvictionBoundsTheResultCache) {
  const DataSet data = GenerateIndependent(1000, 3, 53);
  ServeOptions options;
  options.result_cache_capacity = 1;
  SkyServer server(BuildSnapshot(data, 16, 5), options);

  QuerySpec k3, k4;
  k3.k = 3;
  k4.k = 4;
  ASSERT_TRUE(server.Query(k3).ok());  // miss, cached
  ASSERT_TRUE(server.Query(k4).ok());  // miss, evicts k3
  ASSERT_TRUE(server.Query(k3).ok());  // miss again (was evicted)
  ASSERT_TRUE(server.Query(k3).ok());  // hit
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.result_misses, 3u);
  EXPECT_EQ(stats.result_hits, 1u);
}

TEST(ServeTest, LruTouchOnHitProtectsHotEntriesFromChurn) {
  const DataSet data = GenerateIndependent(1000, 3, 53);
  ServeOptions options;
  options.result_cache_capacity = 2;
  SkyServer server(BuildSnapshot(data, 16, 5), options);

  QuerySpec k3, k4, k5;
  k3.k = 3;
  k4.k = 4;
  k5.k = 5;
  ASSERT_TRUE(server.Query(k3).ok());  // miss, cached {k3}
  ASSERT_TRUE(server.Query(k4).ok());  // miss, cached {k4, k3}
  ASSERT_TRUE(server.Query(k3).ok());  // hit — touches k3 to the front
  ASSERT_TRUE(server.Query(k5).ok());  // miss, evicts the LRU entry: k4
  ASSERT_TRUE(server.Query(k3).ok());  // hit — k3 survived the churn
  ASSERT_TRUE(server.Query(k4).ok());  // miss — k4 was the one evicted
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.result_hits, 2u);
  EXPECT_EQ(stats.result_misses, 4u);
}

// ---------------------------------------------------------------------------
// Query-shaped serving

TEST(ServeTest, SingleSnapshotServerRejectsShapedSpecs) {
  const DataSet data = GenerateIndependent(800, 3, 61);
  SkyServer server(BuildSnapshot(data, 16, 5));
  QuerySpec shaped;
  shaped.k = 3;
  shaped.query.shards = 2;
  EXPECT_FALSE(server.Query(shaped).ok());  // no dataset to rebuild from
  QuerySpec identity;
  identity.k = 3;
  EXPECT_TRUE(server.Query(identity).ok());
}

TEST(ServeTest, DataBackedServerBuildsAndCachesShapedSnapshots) {
  const DataSet data = GenerateIndependent(1500, 3, 43);
  SkyDiverConfig config;
  config.signature_size = 16;
  config.seed = 5;
  auto server = SkyServer::Create(data, config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  QuerySpec identity;
  identity.k = 3;
  ASSERT_TRUE((*server)->Query(identity).ok());
  EXPECT_EQ((*server)->stats().snapshot_misses, 0u);  // identity is pinned

  QuerySpec shaped;
  shaped.k = 2;
  shaped.query.lo = {0.0, 0.0, 0.0};
  shaped.query.hi = {0.6, 1.0, 1.0};
  shaped.query.project = {0, 1};
  const auto first = (*server)->Query(shaped);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (const RowId row : (*first)->rows) {
    EXPECT_LE(data.at(row, 0), 0.6);  // selection came from the boxed skyline
  }

  QuerySpec shaped_other_k = shaped;
  shaped_other_k.k = 3;
  ASSERT_TRUE((*server)->Query(shaped_other_k).ok());  // same shaped snapshot
  const ServeStats stats = (*server)->stats();
  EXPECT_EQ(stats.snapshot_misses, 1u);
  EXPECT_EQ(stats.snapshot_hits, 1u);

  const auto replay = (*server)->Query(shaped);  // result-cache hit
  ASSERT_TRUE(replay.ok());
  ExpectSameResult(**first, **replay);
}

// Lock-order stress for the data-backed server: 8 clients hammer a
// snapshot cache two slots deep with six query shapes, so every round
// builds, evicts, and rebuilds shaped snapshots while the result cache (4
// slots) churns on top. Query() takes mutex_ for bookkeeping, drops it to
// build Phase 1, and retakes it to publish — this schedule drives that
// lock/unlock/relock dance from every client at once, and the TSan CI lane
// (which runs serve_test) turns any ordering hole the annotations missed
// into a hard failure. Results must still match a serial replay bit for
// bit.
TEST(ServeTest, EightClientsHammerTheShapedSnapshotCacheLockDance) {
  const DataSet data = GenerateIndependent(1200, 3, 67);
  SkyDiverConfig config;
  config.signature_size = 16;
  config.seed = 9;
  ServeOptions options;
  options.snapshot_cache_capacity = 2;  // 6 shapes → constant eviction churn
  options.result_cache_capacity = 4;

  std::vector<QuerySpec> shapes;
  for (const double hi0 : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    QuerySpec s;
    s.k = 2;
    s.query.lo = {0.0, 0.0, 0.0};
    s.query.hi = {hi0, 1.0, 1.0};
    shapes.push_back(s);
  }
  QuerySpec projected;
  projected.k = 2;
  projected.query.project = {0, 1};
  shapes.push_back(projected);
  QuerySpec identity;  // pinned snapshot: never competes for cache slots
  identity.k = 3;
  shapes.push_back(identity);

  std::vector<QuerySpec> schedule;
  for (int round = 0; round < 6; ++round) {
    schedule.insert(schedule.end(), shapes.begin(), shapes.end());
  }

  // Serial reference from a second, identically-configured server.
  auto reference_server = SkyServer::Create(data, config, {}, options);
  ASSERT_TRUE(reference_server.ok()) << reference_server.status().ToString();
  std::vector<QueryResult> reference;
  reference.reserve(schedule.size());
  for (const QuerySpec& spec : schedule) {
    const auto result = (*reference_server)->Query(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reference.push_back(**result);
  }

  auto server = SkyServer::Create(data, config, {}, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  constexpr size_t kClients = 8;
  // Slot i belongs to client i % kClients — disjoint slot sets, so the
  // results vector needs no synchronization beyond the pool's join; all
  // assertions happen back on the main thread.
  std::vector<std::shared_ptr<const QueryResult>> results(schedule.size());
  {
    ThreadPool clients(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      ASSERT_TRUE(clients.Submit([&, c] {
        for (size_t i = c; i < schedule.size(); i += kClients) {
          auto result = (*server)->Query(schedule[i]);
          if (result.ok()) results[i] = std::move(result).value();
        }
      }));
    }
    clients.Wait();
  }
  for (size_t i = 0; i < schedule.size(); ++i) {
    ASSERT_NE(results[i], nullptr) << "slot " << i << " failed";
    ExpectSameResult(*results[i], reference[i]);
  }
  const ServeStats stats = (*server)->stats();
  EXPECT_EQ(stats.queries, schedule.size());
  // Every one of the 6 shaped specs starts uncached, so each must record at
  // least one snapshot miss (a Phase-1 build). Anything beyond 6 is
  // eviction-driven rebuild churn — the round-robin over 6 shapes through a
  // 2-slot LRU thrashes by construction, which is the point.
  EXPECT_GE(stats.snapshot_misses, 6u);
}

TEST(ServeTest, CreateRejectsAShapedBaseConfig) {
  const DataSet data = GenerateIndependent(500, 2, 7);
  SkyDiverConfig config;
  config.signature_size = 16;
  config.query.shards = 4;  // the base config must be the identity shape
  EXPECT_FALSE(SkyServer::Create(data, config).ok());
}

// ---------------------------------------------------------------------------
// Streaming hand-off

TEST(ServeTest, StreamSnapshotMatchesBatchBuild) {
  const DataSet data = GenerateIndependent(1200, 3, 59);
  // max_points = n so the stream's hash family (prime > universe) is the
  // batch family, making the two snapshots comparable bit-for-bit.
  StreamingSkyDiver stream(3, 16, 77, data.size());
  for (RowId r = 0; r < data.size(); ++r) {
    ASSERT_TRUE(stream.Insert(data.row(r)).ok());
  }
  const auto from_stream = SnapshotOfStream(stream).value();

  SkyDiverConfig config;
  config.signature_size = 16;
  config.seed = 77;
  const auto from_batch = SkySnapshot::Build(data, config).value();

  EXPECT_EQ(from_stream->skyline(), from_batch->skyline());
  EXPECT_EQ(from_stream->domination_scores(), from_batch->domination_scores());
  for (size_t j = 0; j < from_batch->signatures().columns(); ++j) {
    for (size_t i = 0; i < 16; ++i) {
      ASSERT_EQ(from_stream->signatures().at(j, i), from_batch->signatures().at(j, i));
    }
  }

  // Both snapshots answer a mixed schedule identically through servers.
  SkyServer stream_server(from_stream);
  SkyServer batch_server(from_batch);
  for (const QuerySpec& spec : MixedSchedule()) {
    const auto a = stream_server.Query(spec);
    const auto b = batch_server.Query(spec);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSameResult(**a, **b);
  }
}

}  // namespace
}  // namespace skydiver
